// pftk — command-line front end to the library.
//
//   pftk model <p> <rtt_s> <t0_s> <wm> [b]         closed-form predictions
//   pftk latency <packets> <p> <rtt_s> <t0_s> <wm> short-flow latency
//   pftk provision <rate_pps> <rtt_s> <t0_s> <wm>   inverse model: max loss
//                                                   rate / required window
//   pftk list                                      path-profile catalogue
//   pftk simulate <sender> <receiver> <secs> [seed] [trace-file]
//                                                  run + Table-II row
//   pftk analyze <trace-file> [dupack_threshold]   offline trace analysis
//   pftk faultsim <sender> <receiver> <secs> <schedule> [seed] [trace-file]
//                                                  run under injected faults
//   pftk campaign <spec-file> [--threads N] [--journal FILE] [--resume]
//                                                  supervised grid campaign
//   pftk explore [options | --replay FILE]         bounded model checking:
//                                                  exhaustive loss/timing
//                                                  nondeterminism exploration
//   pftk serve [options]                           throughput-prediction daemon
//                                                  with admission control and
//                                                  load shedding (unix socket)
//   pftk serve --selftest [options]                daemon + replay load client
//                                                  in one process
//   pftk bench [--smoke] [--gate] [--json [FILE]]  hot-path micro-benchmarks
//   pftk obs summarize <obs-file> [--json [FILE]]  TD/TO loss-indication split
//
// simulate, faultsim, and campaign additionally accept
//   --metrics-out FILE    write a pftk-obs/1 metrics+events bundle
//                         (Prometheus text when FILE ends in .prom)
//   --trace-events FILE   write the connection-event timeline as JSONL
// Observability is passive: with the flags present, stdout and any trace
// file stay byte-identical to a run without them (all obs notices go to
// stderr), and a fixed seed yields a byte-identical event stream.
//
// The simulate/analyze pair mirrors the paper's tcpdump-then-postprocess
// workflow: `simulate ... trace.tsv` writes a capture that `analyze`
// (or any external tool) can consume later. `faultsim` layers a
// declarative impairment schedule (see sim/fault_injector.hpp, e.g.
// "blackout@120+5;loss@600+60:0.05") over the path's loss process and
// runs with a watchdog armed, so pathological schedules fail with a
// diagnostic instead of hanging. `campaign` runs a declarative
// profile x seed x scenario x model grid (see exp/campaign/) on a worker
// pool with per-run deadlines, retry-with-backoff on transient failures,
// and a resumable JSONL checkpoint journal; it exits nonzero with a
// failure-taxonomy summary when items were lost. `bench` times the
// hot paths (event-queue dispatch, scalar vs. batched model evaluation,
// trace parsing) and emits schema-stable BENCH_micro.json; it exits
// nonzero if the batched path drifts from the scalar path beyond 1e-12.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/markov_model.hpp"
#include "core/model_registry.hpp"
#include "core/inverse_model.hpp"
#include "core/short_flow_model.hpp"
#include "core/throughput_model.hpp"
#include "exp/campaign/campaign_runner.hpp"
#include "exp/campaign/chaos.hpp"
#include "mc/explorer.hpp"
#include "mc/trace_file.hpp"
#include "exp/hour_trace_experiment.hpp"
#include "exp/micro_bench.hpp"
#include "exp/table_format.hpp"
#include "obs/conn_event_trace.hpp"
#include "obs/event_loop_stats.hpp"
#include "obs/export.hpp"
#include "obs/flight/flight_recorder.hpp"
#include "obs/flight/prof.hpp"
#include "obs/flight/span_export.hpp"
#include "obs/metrics.hpp"
#include "obs/standard_metrics.hpp"
#include "obs/summarize.hpp"
#include "robust/failpoint.hpp"
#include "robust/shutdown.hpp"
#include "serve/load_client.hpp"
#include "serve/serve_metrics.hpp"
#include "serve/server.hpp"
#include "serve/supervised.hpp"
#include "sim/fault_injector.hpp"
#include "sim/sim_watchdog.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/trace_summary.hpp"
#include "trace/trace_validator.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  pftk model <p> <rtt_s> <t0_s> <wm> [b]\n"
               "  pftk latency <packets> <p> <rtt_s> <t0_s> <wm>\n"
               "  pftk provision <rate_pps> <rtt_s> <t0_s> <wm>\n"
               "  pftk list\n"
               "  pftk simulate <sender> <receiver> <seconds> [seed] [trace-file]\n"
               "  pftk analyze <trace-file> [dupack_threshold]\n"
               "  pftk faultsim <sender> <receiver> <seconds> <schedule> [seed] [trace-file]\n"
               "      schedule: kind@start[+duration][#count][:rate[:magnitude]] ';'-separated\n"
               "      kinds: blackout, loss, dup, reorder, delay  (e.g. blackout@120+5)\n"
               "  pftk faultsim --list-failpoints\n"
               "      enumerate every registered failpoint site, one per line\n"
               "  pftk explore [--packets N] [--window W] [--ack-every B] [--ack-loss]\n"
               "               [--loss-choices N] [--ties K] [--tie-choices N]\n"
               "               [--faults SPEC] [--depth N] [--max-states N] [--no-prune]\n"
               "               [--split-depth N] [--threads N|-j N] [--seed N] [--out FILE]\n"
               "      exhaustive bounded exploration of loss/timing nondeterminism in a\n"
               "      small finite transfer; every branch runs the live invariant\n"
               "      checker plus model-assumption checks. exits 0 on a complete clean\n"
               "      enumeration, 1 with a replayable counterexample written to --out\n"
               "      on a violation, 3 when interrupted or a budget cut the search\n"
               "  pftk explore --replay FILE\n"
               "      re-execute a recorded counterexample under strict verification;\n"
               "      exits 0 iff the trace reproduces (same checks, same end digest)\n"
               "  pftk campaign <spec-file> [--threads N] [--journal FILE] [--resume]\n"
               "                [--fsync-every N]\n"
               "      supervised grid campaign (see EXPERIMENTS.md for the spec and\n"
               "      journal formats); exits 1 with a taxonomy summary on partial\n"
               "      loss, 3 when interrupted by SIGINT/SIGTERM (journal stays\n"
               "      resumable; a second signal hard-exits with 130)\n"
               "  pftk chaos <spec-file> [--threads N] [--dir DIR] [--fsync-every N]\n"
               "             [--failpoint SPEC]...\n"
               "      crash-recovery matrix: fork, crash at each journal failpoint,\n"
               "      resume, and verify byte-identical convergence; exits 1 on any\n"
               "      divergence\n"
               "  pftk serve --socket PATH [--shards N] [--queue-depth N] [--batch-max N]\n"
               "             [--max-line-bytes N] [--max-clients N] [--deadline-ms F]\n"
               "             [--metrics-out FILE] [--metrics-every N] [--slow-us N]\n"
               "             [--workers N] [--stall-timeout MS] [--restart-budget N]\n"
               "             [--restart-window S] [--postmortem FILE]\n"
               "             [--degrade-watermark F] [--ping-interval MS]\n"
               "      throughput-prediction daemon on a unix socket (line protocol:\n"
               "      MODEL/INVERSE/CALIB/PING, see EXPERIMENTS.md). Sheds load with\n"
               "      BUSY at the per-shard queue watermark, enforces per-request\n"
               "      deadlines, and on SIGINT/SIGTERM drains in-flight work, flushes\n"
               "      metrics durably, and exits 3 (second signal: 130).\n"
               "      --workers >= 2 engages the self-healing pool: the parent binds\n"
               "      the socket once, forks N accept-sharing workers, restarts\n"
               "      crashed/stalled ones under capped backoff, degrades to the\n"
               "      approximate model while restart pressure is high, and exits 4\n"
               "      (with a durable post-mortem) when the restart budget is spent\n"
               "  pftk serve --selftest [--requests N] [--connections N] [--pipeline N]\n"
               "             [--seed N] [--slow-us N] [--queue-depth N] ...\n"
               "      in-process daemon + deterministic replay load; verifies served\n"
               "      rates against the library and both accounting identities\n"
               "  pftk bench [--smoke] [--gate] [--json [FILE]]\n"
               "      hot-path micro-benchmarks; --json writes BENCH_micro.json (or\n"
               "      FILE); exits 1 if batched model evaluation drifts from scalar\n"
               "      or the mmap trace reader disagrees with the istream reference,\n"
               "      or (with --gate) if obs/failpoint/span overhead exceeds 1.10x\n"
               "      or the mmap-vs-istream trace speedup falls below its floor\n"
               "  pftk obs summarize <obs-file>... [--json [FILE]]\n"
               "      TD/TO loss-indication breakdown of pftk-obs/1 file(s); several\n"
               "      files (e.g. per-worker snapshots) merge with the shard-merge\n"
               "      semantics before summarizing\n"
               "  pftk prof <spans.jsonl> [--json [FILE]]\n"
               "      aggregate a pftk-spans/1 flight recording into an inclusive/\n"
               "      exclusive self-time table (p50/p99 per span) with a\n"
               "      parent-child rollup; for serve recordings, re-derives and\n"
               "      checks the request accounting identity from span counts\n"
               "      (exit 1 on violation)\n"
               "\n"
               "simulate/faultsim/campaign also accept --metrics-out FILE (pftk-obs/1\n"
               "bundle; Prometheus text if FILE ends in .prom) and --trace-events FILE\n"
               "(connection-event JSONL); stdout stays byte-identical either way\n"
               "\n"
               "every command accepts --failpoints \"name:after=N:action=A[:arg=K];...\"\n"
               "(actions: error, short_write, enospc, delay, crash) to inject faults\n"
               "on persistence paths; disarmed failpoints are byte-invisible\n"
               "\n"
               "every command accepts --trace-spans FILE [--span-ring N] to arm the\n"
               "flight recorder: span scopes on the hot paths (serve request path,\n"
               "campaign items, mc branches, trace-ingest chunks) record into\n"
               "per-thread rings (capacity N, default 65536, overwrite-oldest) and\n"
               "drain to FILE on exit — Chrome/Perfetto trace JSON when FILE ends\n"
               "in .json, pftk-spans/1 JSONL otherwise (the `pftk prof` input).\n"
               "Disarmed span sites cost one relaxed load and are byte-invisible\n";
  return 2;
}

// Typed numeric argument parsing, unified across subcommands: every
// numeric argv goes through one of these, so "model 0.01 abc 2 8" or a
// NaN deadline is a ParamError (exit 2, like any other usage error)
// instead of atof's silent 0.0.
double parse_number(const char* text, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !std::isfinite(v)) {
    throw pftk::model::ParamError(std::string(what) +
                                  " must be a finite number, got '" + text +
                                  "'");
  }
  return v;
}

double parse_positive(const char* text, const char* what) {
  const double v = parse_number(text, what);
  if (!(v > 0.0)) {
    throw pftk::model::ParamError(std::string(what) + " must be > 0, got '" +
                                  text + "'");
  }
  return v;
}

double parse_nonnegative(const char* text, const char* what) {
  const double v = parse_number(text, what);
  if (!(v >= 0.0)) {
    throw pftk::model::ParamError(std::string(what) + " must be >= 0, got '" +
                                  text + "'");
  }
  return v;
}

long long parse_integer(const char* text, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    throw pftk::model::ParamError(std::string(what) +
                                  " must be an integer, got '" + text + "'");
  }
  return v;
}

int parse_positive_int(const char* text, const char* what) {
  const long long v = parse_integer(text, what);
  if (v <= 0 || v > std::numeric_limits<int>::max()) {
    throw pftk::model::ParamError(std::string(what) +
                                  " must be a positive integer, got '" + text +
                                  "'");
  }
  return static_cast<int>(v);
}

std::uint64_t parse_u64(const char* text, const char* what) {
  const long long v = parse_integer(text, what);
  if (v < 0) {
    throw pftk::model::ParamError(std::string(what) + " must be >= 0, got '" +
                                  text + "'");
  }
  return static_cast<std::uint64_t>(v);
}

/// Observability outputs requested on the command line.
struct ObsOptions {
  std::string metrics_out;   ///< --metrics-out FILE
  std::string trace_events;  ///< --trace-events FILE
  [[nodiscard]] bool enabled() const noexcept {
    return !metrics_out.empty() || !trace_events.empty();
  }
};

/// Pulls --metrics-out/--trace-events out of argv in place (compacting
/// the remainder) so the positional grammars stay untouched.
ObsOptions extract_obs_flags(int& argc, char** argv) {
  ObsOptions opts;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      opts.metrics_out = argv[++i];
    } else if (arg == "--trace-events" && i + 1 < argc) {
      opts.trace_events = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return opts;
}

/// Mirrors a finished connection's counters into `shard`. Reads only
/// already-computed state, so it is safe after a watchdog abort too.
void record_run_metrics(const pftk::obs::StandardMetrics& met,
                        pftk::obs::MetricsShard& shard,
                        const pftk::sim::Connection& conn,
                        const pftk::obs::ConnEventTrace& etrace,
                        const pftk::obs::EventLoopStats& loop, double avg_rtt) {
  const auto& s = conn.sender().stats();
  shard.add(met.packets_sent, static_cast<double>(s.transmissions));
  shard.add(met.retransmissions, static_cast<double>(s.retransmissions));
  shard.add(met.td_indications, static_cast<double>(s.fast_retransmits));
  shard.add(met.timeouts, static_cast<double>(s.timeouts));
  shard.add(met.acks, static_cast<double>(s.acks_received));
  shard.add(met.dup_acks, static_cast<double>(s.dup_acks_received));
  met.record_event_loop(shard, loop);
  shard.add(met.conn_events, static_cast<double>(etrace.recorded()));
  shard.add(met.conn_events_dropped, static_cast<double>(etrace.dropped()));
  pftk::sim::FaultStats faults;
  if (const auto* f = conn.forward_link().faults()) {
    faults += f->stats();
  }
  if (const auto* f = conn.reverse_link().faults()) {
    faults += f->stats();
  }
  shard.add(met.fault_offered, static_cast<double>(faults.offered));
  shard.add(met.fault_dropped, static_cast<double>(faults.total_dropped()));
  shard.add(met.fault_duplicated, static_cast<double>(faults.duplicated));
  shard.add(met.fault_reordered, static_cast<double>(faults.reordered));
  shard.add(met.fault_delayed, static_cast<double>(faults.delayed));
  if (avg_rtt > 0.0) {
    shard.observe(met.rtt_seconds, avg_rtt);
  }
}

/// Writes the requested obs files. Notices go to stderr so stdout stays
/// byte-identical with and without the flags (CI compares them).
void export_obs_outputs(const ObsOptions& opts, const pftk::obs::ObsBundle& bundle) {
  if (!opts.metrics_out.empty()) {
    pftk::obs::save_obs_file(opts.metrics_out, bundle);
    std::cerr << "obs: metrics written to " << opts.metrics_out << "\n";
  }
  if (!opts.trace_events.empty()) {
    pftk::obs::ObsBundle events_only;
    events_only.source = bundle.source;
    events_only.events = bundle.events;
    events_only.events_dropped = bundle.events_dropped;
    pftk::obs::save_obs_file(opts.trace_events, events_only);
    std::cerr << "obs: " << events_only.events.size() << " connection events written to "
              << opts.trace_events << "\n";
  }
}

int cmd_model(int argc, char** argv) {
  if (argc < 6) {
    return usage();
  }
  pftk::model::ModelParams params;
  params.p = parse_nonnegative(argv[2], "p");
  params.rtt = parse_positive(argv[3], "rtt_s");
  params.t0 = parse_positive(argv[4], "t0_s");
  params.wm = parse_positive(argv[5], "wm");
  params.b = argc > 6 ? parse_positive_int(argv[6], "b") : 2;
  params.validate();

  std::cout << params.describe() << "\n";
  for (const auto kind : pftk::model::all_model_kinds) {
    std::cout << "  " << pftk::model::model_name(kind) << ": "
              << pftk::model::evaluate_model(kind, params) << " pkts/s\n";
  }
  std::cout << "  throughput T(p): " << pftk::model::throughput_model_rate(params)
            << " pkts/s\n";
  if (params.p > 0.0) {
    std::cout << "  Markov (numerical): " << pftk::model::markov_model_send_rate(params)
              << " pkts/s\n";
  }
  return 0;
}

int cmd_latency(int argc, char** argv) {
  if (argc < 7) {
    return usage();
  }
  const std::uint64_t d = parse_u64(argv[2], "packets");
  pftk::model::ModelParams params;
  params.p = parse_nonnegative(argv[3], "p");
  params.rtt = parse_positive(argv[4], "rtt_s");
  params.t0 = parse_positive(argv[5], "t0_s");
  params.wm = parse_positive(argv[6], "wm");
  const auto bd = pftk::model::short_flow_breakdown(d, params);
  std::cout << "transfer of " << d << " packets @ " << params.describe() << "\n"
            << "  slow start:    " << bd.slow_start_seconds << " s ("
            << bd.expected_slow_start_packets << " pkts)\n"
            << "  loss recovery: " << bd.loss_recovery_seconds << " s (P[loss] = "
            << bd.loss_probability << ")\n"
            << "  steady state:  " << bd.steady_state_seconds << " s\n"
            << "  total:         " << bd.total_seconds << " s\n";
  return 0;
}

int cmd_provision(int argc, char** argv) {
  if (argc < 6) {
    return usage();
  }
  const double target = parse_positive(argv[2], "rate_pps");
  pftk::model::ModelParams params;
  params.rtt = parse_positive(argv[3], "rtt_s");
  params.t0 = parse_positive(argv[4], "t0_s");
  params.wm = parse_positive(argv[5], "wm");
  params.p = 0.01;  // placeholder; each inversion ignores one field
  const double max_p = pftk::model::max_loss_for_rate(params, target);
  std::cout << "target " << target << " pkts/s @ RTT " << params.rtt << " s, T0 "
            << params.t0 << " s, Wm " << params.wm << ":\n"
            << "  max tolerable loss-indication rate: " << max_p
            << (max_p == 0.0 ? "  (unreachable: ceiling Wm/RTT is below target)" : "")
            << "\n";
  for (const double p : {0.001, 0.01, 0.05}) {
    pftk::model::ModelParams probe = params;
    probe.p = p;
    const double wm = pftk::model::required_window_for_rate(probe, target);
    std::cout << "  required window at p=" << p << ": " << wm << " packets\n";
  }
  return 0;
}

int cmd_list() {
  for (const auto& profile : pftk::exp::table2_profiles()) {
    std::cout << profile.label() << "\n";
  }
  std::cout << pftk::exp::modem_profile().label() << " (modem; use the fig11 bench)\n";
  return 0;
}

/// A long simulation run in SIGINT-checkable slices. Connection::run_for
/// is resumable, so the run advances `kSliceSeconds` of simulated time at
/// a time and polls the shutdown flag between slices: long `simulate` /
/// `faultsim` runs honor the repo-wide interrupted contract (stop at an
/// event boundary, still write trace/metrics, exit 3) instead of
/// ignoring the first signal until the run completes.
struct SlicedRun {
  pftk::sim::ConnectionSummary total;
  bool interrupted = false;
};

SlicedRun run_sliced(pftk::sim::Connection& conn, double duration) {
  constexpr double kSliceSeconds = 5.0;
  SlicedRun out;
  double done = 0.0;
  while (done < duration) {
    if (pftk::robust::ShutdownGuard::stop_requested()) {
      out.interrupted = true;
      break;
    }
    const double step = std::min(kSliceSeconds, duration - done);
    const auto slice = conn.run_for(step);
    done += step;
    out.total.duration += slice.duration;
    out.total.packets_sent += slice.packets_sent;
    out.total.packets_delivered += slice.packets_delivered;
    // These come from cumulative sender/fault state; the last slice's
    // values are the run totals.
    out.total.retransmissions = slice.retransmissions;
    out.total.fast_retransmits = slice.fast_retransmits;
    out.total.timeouts = slice.timeouts;
    out.total.forward_faults = slice.forward_faults;
    out.total.reverse_faults = slice.reverse_faults;
  }
  if (out.total.duration > 0.0) {
    out.total.send_rate =
        static_cast<double>(out.total.packets_sent) / out.total.duration;
    out.total.throughput =
        static_cast<double>(out.total.packets_delivered) / out.total.duration;
  }
  return out;
}

int cmd_simulate(int argc, char** argv) {
  const ObsOptions obs_opts = extract_obs_flags(argc, argv);
  if (argc < 5) {
    return usage();
  }
  const auto profile = pftk::exp::profile_by_label(argv[2], argv[3]);
  const double duration = parse_positive(argv[4], "seconds");
  const std::uint64_t seed = argc > 5 ? parse_u64(argv[5], "seed") : 1998;
  const std::string trace_path = argc > 6 ? argv[6] : "";

  // First SIGINT/SIGTERM stops at the next slice boundary (partial
  // results + trace/metrics still written, exit 3); second hard-exits.
  pftk::robust::ShutdownGuard shutdown(/*hard_exit_code=*/130);

  pftk::sim::Connection conn(pftk::exp::make_connection_config(profile, seed));
  pftk::trace::TraceRecorder recorder;
  conn.set_observer(&recorder);
  pftk::obs::ConnEventTrace etrace;
  pftk::obs::EventLoopStats loop;
  if (obs_opts.enabled()) {
    conn.attach_observability(&etrace, &loop);
  }
  const auto sliced = run_sliced(conn, duration);
  const auto& run = sliced.total;

  auto row = pftk::trace::summarize_trace(recorder.events(), profile.dupack_threshold());
  std::cout << profile.label() << ", " << duration << " s, seed " << seed << "\n"
            << "  packets sent " << row.packets_sent << ", loss indications "
            << row.loss_indications << " (p = " << pftk::exp::fmt(row.observed_p, 4)
            << "), TD " << row.td_events << "\n"
            << "  RTT " << pftk::exp::fmt(row.avg_rtt, 3) << " s, T0 "
            << pftk::exp::fmt(row.avg_timeout, 3) << " s, send rate "
            << pftk::exp::fmt(run.send_rate, 2) << " pkts/s\n";
  if (!trace_path.empty()) {
    pftk::trace::save_trace_file(trace_path, recorder.events());
    std::cout << "  trace written to " << trace_path << " (" << recorder.events().size()
              << " events)\n";
  }
  if (obs_opts.enabled()) {
    pftk::obs::MetricsRegistry registry;
    const auto met = pftk::obs::StandardMetrics::register_on(registry);
    registry.freeze(1);
    record_run_metrics(met, registry.shard(0), conn, etrace, loop, row.avg_rtt);
    pftk::obs::ObsBundle bundle;
    bundle.source = "simulate";
    bundle.metrics = registry.snapshot();
    bundle.events = etrace.events();
    bundle.events_dropped = etrace.dropped();
    export_obs_outputs(obs_opts, bundle);
  }
  if (sliced.interrupted) {
    std::cout << "interrupted: stopped after " << pftk::exp::fmt(run.duration, 1)
              << " of " << pftk::exp::fmt(duration, 1)
              << " simulated seconds; outputs above cover the partial run\n";
    return 3;
  }
  return 0;
}

int cmd_faultsim(int argc, char** argv) {
  // Site discovery: which code paths can be chaos-tested right now.
  if (argc >= 3 && std::string(argv[2]) == "--list-failpoints") {
    for (const auto& [name, description] :
         pftk::robust::FailpointRegistry::instance().known_sites()) {
      std::cout << name << "\t" << description << "\n";
    }
    return 0;
  }
  const ObsOptions obs_opts = extract_obs_flags(argc, argv);
  if (argc < 6) {
    return usage();
  }
  const auto profile = pftk::exp::profile_by_label(argv[2], argv[3]);
  const double duration = parse_positive(argv[4], "seconds");
  const auto schedule = pftk::sim::FaultSchedule::parse(argv[5]);
  const std::uint64_t seed = argc > 6 ? parse_u64(argv[6], "seed") : 1998;
  const std::string trace_path = argc > 7 ? argv[7] : "";

  // Same interrupted contract as simulate: stop at a slice boundary,
  // still write the trace/metrics, exit 3 (second signal: 130).
  pftk::robust::ShutdownGuard shutdown(/*hard_exit_code=*/130);

  auto config = pftk::exp::make_connection_config(profile, seed);
  config.forward_faults = schedule;
  pftk::sim::Connection conn(config);
  conn.enable_watchdog();
  pftk::trace::TraceRecorder recorder;
  conn.set_observer(&recorder);
  pftk::obs::ConnEventTrace etrace;
  pftk::obs::EventLoopStats loop;
  if (obs_opts.enabled()) {
    conn.attach_observability(&etrace, &loop);
  }

  std::cout << profile.label() << ", " << duration << " s, seed " << seed
            << "\n  schedule: " << schedule.describe() << "\n";
  int exit_code = 0;
  double avg_rtt = 0.0;
  bool interrupted = false;
  try {
    const auto sliced = run_sliced(conn, duration);
    const auto& run = sliced.total;
    interrupted = sliced.interrupted;
    auto row =
        pftk::trace::summarize_trace(recorder.events(), profile.dupack_threshold());
    avg_rtt = row.avg_rtt;
    std::cout << "  packets sent " << row.packets_sent << ", loss indications "
              << row.loss_indications << " (p = " << pftk::exp::fmt(row.observed_p, 4)
              << "), send rate " << pftk::exp::fmt(run.send_rate, 2) << " pkts/s\n"
              << "  faults: " << run.forward_faults.total_dropped() << " dropped ("
              << run.forward_faults.dropped_blackout << " blackout, "
              << run.forward_faults.dropped_loss << " loss), "
              << run.forward_faults.duplicated << " duplicated, "
              << run.forward_faults.reordered << " reordered, "
              << run.forward_faults.delayed << " delayed, of "
              << run.forward_faults.offered << " offered\n";
  } catch (const pftk::sim::WatchdogError& e) {
    std::cerr << "watchdog tripped:\n" << e.snapshot().describe() << "\n";
    exit_code = 1;
  }

  // Trace write + verification. The immediate lenient re-read catches
  // torn writes (full disk, crashed filesystem) while the capture can
  // still be regenerated instead of at analysis time weeks later.
  pftk::trace::TraceReadReport trace_report;
  if (exit_code != 1 && !trace_path.empty()) {
    pftk::trace::save_trace_file(trace_path, recorder.events());
    std::cout << "  trace written to " << trace_path << " (" << recorder.events().size()
              << " events)\n";
    (void)pftk::trace::load_trace_file_lenient(trace_path, &trace_report);
    if (!trace_report.clean()) {
      std::cerr << "warning: " << trace_path << ": " << trace_report.describe() << "\n";
    }
  }

  if (obs_opts.enabled()) {
    pftk::obs::MetricsRegistry registry;
    const auto met = pftk::obs::StandardMetrics::register_on(registry);
    registry.freeze(1);
    auto& shard = registry.shard(0);
    record_run_metrics(met, shard, conn, etrace, loop, avg_rtt);
    if (exit_code != 0) {
      shard.add(met.watchdog_trips, 1.0);
    }
    shard.add(met.trace_lines_dropped, static_cast<double>(trace_report.lines_dropped));
    shard.add(met.trace_bytes_dropped, static_cast<double>(trace_report.bytes_dropped));
    if (!trace_report.clean()) {
      shard.add(met.trace_files_dirty, 1.0);
    }
    pftk::obs::ObsBundle bundle;
    bundle.source = "faultsim";
    bundle.metrics = registry.snapshot();
    bundle.events = etrace.events();
    bundle.events_dropped = etrace.dropped();
    export_obs_outputs(obs_opts, bundle);
  }
  if (exit_code == 0 && interrupted) {
    std::cout << "interrupted: partial run; outputs above cover what completed\n";
    return 3;
  }
  return exit_code;
}

int cmd_campaign(int argc, char** argv) {
  const ObsOptions obs_opts = extract_obs_flags(argc, argv);
  if (argc < 3) {
    return usage();
  }
  const std::string spec_path = argv[2];
  pftk::exp::campaign::CampaignRunnerOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (arg == "--journal" && i + 1 < argc) {
      options.journal_path = argv[++i];
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--fsync-every" && i + 1 < argc) {
      options.fsync_every =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::cerr << "unknown campaign option: " << arg << "\n";
      return usage();
    }
  }

  // Graceful shutdown: first SIGINT/SIGTERM stops admitting items and
  // drains; the second hard-exits. The runner flushes the journal on the
  // way out, so an interrupted campaign is always resumable.
  pftk::robust::ShutdownGuard shutdown(/*hard_exit_code=*/130);
  options.stop = pftk::robust::ShutdownGuard::stop_flag();

  const auto spec = pftk::exp::campaign::CampaignSpec::parse_file(spec_path);
  pftk::exp::campaign::CampaignRunner runner(spec, options);
  const auto result = runner.run();

  std::cout << "campaign: " << result.items.size() << " items ("
            << spec.profiles.size() << " profiles x " << spec.seeds.size()
            << " seeds x " << std::max<std::size_t>(1, spec.scenarios.size())
            << " scenarios x " << std::max<std::size_t>(1, spec.models.size())
            << " models), " << options.threads << " worker(s)";
  if (result.resumed > 0) {
    std::cout << ", " << result.resumed << " replayed from journal";
  }
  std::cout << "\n\n";

  pftk::exp::TextTable t(
      {"item", "status", "tries", "packets", "rate", "predicted", "p", "rtt"});
  for (const auto& item : result.items) {
    using pftk::exp::campaign::ItemStatus;
    const char* status = item.status == ItemStatus::kOk ? "ok"
                         : item.status == ItemStatus::kNotRun ? "not run"
                         : item.status == ItemStatus::kFailedTransient
                             ? "lost (transient)"
                             : "lost (permanent)";
    if (item.ok()) {
      t.add_row({item.item.key(), status, std::to_string(item.attempts),
                 pftk::exp::fmt_u(item.metrics.packets_sent),
                 pftk::exp::fmt(item.metrics.send_rate, 2),
                 pftk::exp::fmt(item.metrics.predicted, 0),
                 pftk::exp::fmt(item.metrics.p, 4),
                 pftk::exp::fmt(item.metrics.rtt, 3)});
    } else {
      t.add_row({item.item.key(), status, std::to_string(item.attempts)});
    }
  }
  t.print(std::cout);

  std::cout << "\n" << result.report.describe() << "\n";

  // Surface trace-salvage damage as one line, not a screenful: campaigns
  // run unattended and the operator needs a single grep-able signal.
  std::size_t dirty_files = 0;
  std::size_t salvage_lines_dropped = 0;
  for (const auto& rr : result.report.read_reports) {
    if (!rr.clean()) {
      ++dirty_files;
      salvage_lines_dropped += rr.lines_dropped;
    }
  }
  if (dirty_files > 0) {
    std::cerr << "warning: trace salvage: " << dirty_files << " dirty file(s), "
              << salvage_lines_dropped << " line(s) dropped (see report)\n";
  }

  if (obs_opts.enabled()) {
    pftk::obs::ObsBundle bundle;
    bundle.source = "campaign";
    bundle.metrics = result.report.metrics;
    bundle.spans = result.report.spans;
    if (dirty_files > 0) {
      // Fold the salvage damage into the exported snapshot so the
      // counters match the warning above.
      pftk::obs::MetricsRegistry salvage;
      const auto met = pftk::obs::StandardMetrics::register_on(salvage);
      salvage.freeze(1);
      auto& shard = salvage.shard(0);
      std::size_t salvage_bytes = 0;
      for (const auto& rr : result.report.read_reports) {
        salvage_bytes += rr.bytes_dropped;
      }
      shard.add(met.trace_files_dirty, static_cast<double>(dirty_files));
      shard.add(met.trace_lines_dropped, static_cast<double>(salvage_lines_dropped));
      shard.add(met.trace_bytes_dropped, static_cast<double>(salvage_bytes));
      bundle.metrics.merge(salvage.snapshot());
    }
    export_obs_outputs(obs_opts, bundle);
  }

  if (result.interrupted) {
    // Dedicated exit code so supervisors can tell "stopped on request,
    // resume me" apart from "lost items". The journal was flushed and
    // contains only fully-settled records.
    std::cout << "interrupted: " << result.not_run
              << " item(s) not run; resume with --resume\n";
    if (!result.all_ok()) {
      std::cout << result.taxonomy_summary() << "\n";
    }
    return 3;
  }
  if (!result.all_ok()) {
    std::cout << result.taxonomy_summary() << "\n";
    return 1;
  }
  return 0;
}

/// Re-executes a saved counterexample and verifies it reproduces: same
/// divergence-free run, same violated check, same end-state digest.
int explore_replay(const std::string& path) {
  const auto trace = pftk::mc::load_trace_file(path);
  pftk::mc::Explorer explorer(trace.config);
  const auto outcome = explorer.replay(trace.choices);

  std::cout << "replay: " << path << "\n  config: " << trace.config.describe()
            << "\n  choices: " << pftk::mc::encode_choices(trace.choices) << "\n";
  if (outcome.diverged) {
    std::cout << "  DIVERGED: " << outcome.message << "\n";
    return 1;
  }
  const bool check_matches = outcome.violated ? (outcome.check == trace.check)
                                              : trace.check.empty();
  const bool digest_matches = outcome.digest == trace.digest;
  if (outcome.violated) {
    std::cout << "  violation reproduced: [" << outcome.check << "] "
              << outcome.message << "\n";
  } else {
    std::cout << "  branch ran clean\n";
  }
  std::cout << "  digest: " << outcome.digest.hex()
            << (digest_matches ? " (matches trace)" : " (MISMATCH)") << "\n";
  if (!check_matches) {
    std::cout << "  check mismatch: trace recorded ["
              << (trace.check.empty() ? "<none>" : trace.check) << "]\n";
  }
  return (check_matches && digest_matches) ? 0 : 1;
}

int cmd_explore(int argc, char** argv) {
  const ObsOptions obs_opts = extract_obs_flags(argc, argv);
  pftk::mc::ExploreConfig config;
  std::string out_path = "counterexample.pftk-mc";
  std::string replay_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--replay" && has_value) {
      replay_path = argv[++i];
    } else if (arg == "--packets" && has_value) {
      config.packets = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--window" && has_value) {
      config.window = std::atof(argv[++i]);
    } else if (arg == "--ack-every" && has_value) {
      config.ack_every = std::atoi(argv[++i]);
    } else if (arg == "--ack-loss") {
      config.ack_loss = true;
    } else if (arg == "--loss-choices" && has_value) {
      config.loss_choices = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--ties" && has_value) {
      config.tie_width = static_cast<std::uint32_t>(std::atoi(argv[++i]));
      if (config.tie_choices == 0) {
        config.tie_choices = 4;  // sensible default once ties are on
      }
    } else if (arg == "--tie-choices" && has_value) {
      config.tie_choices = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--faults" && has_value) {
      config.fault_schedule = argv[++i];
    } else if (arg == "--depth" && has_value) {
      config.depth = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--max-states" && has_value) {
      config.max_states = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--no-prune") {
      config.prune_visited = false;
    } else if (arg == "--split-depth" && has_value) {
      config.split_depth = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if ((arg == "--threads" || arg == "-j") && has_value) {
      config.threads = std::atoi(argv[++i]);
    } else if (arg == "--seed" && has_value) {
      config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--time-cap" && has_value) {
      config.time_cap = std::atof(argv[++i]);
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else {
      std::cerr << "unknown explore option: " << arg << "\n";
      return usage();
    }
  }
  if (!replay_path.empty()) {
    return explore_replay(replay_path);
  }

  // First SIGINT/SIGTERM stops between branches (partial counts are
  // reported, exit 3); the second hard-exits with 130.
  pftk::robust::ShutdownGuard shutdown(/*hard_exit_code=*/130);

  pftk::mc::Explorer explorer(config);
  const auto result = explorer.run(pftk::robust::ShutdownGuard::stop_flag());
  const auto& st = result.stats;

  std::cout << "explore: " << config.describe() << "\n"
            << "  states " << st.states << ", branches " << st.branches
            << " (terminal " << st.terminals << ", pruned " << st.pruned
            << ", truncated " << st.truncated << "), jobs " << result.jobs << "\n"
            << "  enumeration " << (result.complete ? "complete" : "INCOMPLETE")
            << (result.interrupted ? " (interrupted)" : "") << ", violations "
            << st.violations << "\n";

  int exit_code = 0;
  if (!result.violations.empty()) {
    const auto& violation = result.violations.front();
    pftk::mc::CounterexampleTrace trace;
    trace.config = config;
    trace.choices = violation.path;
    trace.check = violation.check;
    trace.message = violation.message;
    trace.digest = violation.digest;
    pftk::mc::save_trace_file(out_path, trace);
    std::cout << "  VIOLATION [" << violation.check << "]: " << violation.message
              << "\n  counterexample written to " << out_path
              << " (replay with: pftk explore --replay " << out_path << ")\n";
    exit_code = 1;
  } else if (result.interrupted || !result.complete) {
    exit_code = 3;
  }

  if (obs_opts.enabled()) {
    pftk::obs::MetricsRegistry registry;
    const auto met = pftk::obs::StandardMetrics::register_on(registry);
    registry.freeze(1);
    auto& shard = registry.shard(0);
    shard.add(met.mc_explored_states, static_cast<double>(st.states));
    shard.add(met.mc_pruned, static_cast<double>(st.pruned));
    shard.add(met.mc_violations, static_cast<double>(st.violations));
    pftk::obs::ObsBundle bundle;
    bundle.source = "explore";
    bundle.metrics = registry.snapshot();
    export_obs_outputs(obs_opts, bundle);
  }
  return exit_code;
}

int cmd_chaos(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string spec_path = argv[2];
  pftk::exp::campaign::ChaosOptions options;
  options.work_dir = "pftk-chaos";
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (arg == "--dir" && i + 1 < argc) {
      options.work_dir = argv[++i];
    } else if (arg == "--fsync-every" && i + 1 < argc) {
      options.fsync_every =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--failpoint" && i + 1 < argc) {
      options.failpoints.emplace_back(argv[++i]);
    } else {
      std::cerr << "unknown chaos option: " << arg << "\n";
      return usage();
    }
  }
  const auto spec = pftk::exp::campaign::CampaignSpec::parse_file(spec_path);
  const auto report = pftk::exp::campaign::run_chaos_matrix(spec, options);
  std::cout << pftk::exp::campaign::describe(report) << "\n";
  return report.all_ok() ? 0 : 1;
}

/// In-process selftest: start a daemon, replay a deterministic load
/// against it, drain, and cross-check both accounting identities
/// (client-side and server-side) against each other.
int serve_selftest(pftk::serve::ServeConfig config,
                   pftk::serve::LoadConfig load) {
  config.validate();
  pftk::serve::Server server(config);
  server.start();
  load.socket_path = config.socket_path;
  const auto report = pftk::serve::run_load(load);
  server.request_stop();
  const auto summary = server.wait();

  std::cout << "serve selftest @ " << config.socket_path << "\n"
            << "client: " << report.describe() << "\n"
            << "server: " << summary.describe() << "\n";

  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::cout << "FAIL: " << what << "\n";
      ok = false;
    }
  };
  check(report.accounting_ok(), "client accounting identity");
  check(summary.accounting_ok(), "server accounting identity");
  check(report.protocol_errors == 0, "client saw protocol errors");
  check(report.verify_failures == 0, "served rates diverged from the library");
  check(report.lost == 0, "responses lost");
  check(report.sent == summary.requests, "client sent != server admitted");
  check(report.ok == summary.served, "client ok != server served");
  check(report.busy == summary.shed, "client busy != server shed");
  check(report.deadline == summary.deadline_missed,
        "client deadline != server deadline-missed");
  std::cout << (ok ? "selftest ok" : "selftest FAILED") << "\n";
  return ok ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  pftk::serve::SupervisedServeConfig sup;
  pftk::serve::ServeConfig& config = sup.serve;
  config.socket_path = pftk::serve::default_socket_path();
  pftk::serve::LoadConfig load;
  load.requests = 5000;
  bool selftest = false;
  int workers = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--socket" && has_value) {
      config.socket_path = argv[++i];
    } else if (arg == "--workers" && has_value) {
      workers = parse_positive_int(argv[++i], "--workers");
    } else if (arg == "--stall-timeout" && has_value) {
      sup.stall_timeout_ms = parse_nonnegative(argv[++i], "--stall-timeout");
    } else if (arg == "--restart-budget" && has_value) {
      sup.restart_budget = parse_positive_int(argv[++i], "--restart-budget");
    } else if (arg == "--restart-window" && has_value) {
      sup.restart_window_s = parse_nonnegative(argv[++i], "--restart-window");
    } else if (arg == "--postmortem" && has_value) {
      sup.postmortem_path = argv[++i];
    } else if (arg == "--degrade-watermark" && has_value) {
      config.degrade_shed_watermark =
          parse_nonnegative(argv[++i], "--degrade-watermark");
    } else if (arg == "--ping-interval" && has_value) {
      sup.self_ping_interval_ms = parse_nonnegative(argv[++i], "--ping-interval");
    } else if (arg == "--shards" && has_value) {
      config.shards = parse_positive_int(argv[++i], "--shards");
    } else if (arg == "--queue-depth" && has_value) {
      config.queue_depth =
          static_cast<std::size_t>(parse_positive_int(argv[++i], "--queue-depth"));
    } else if (arg == "--batch-max" && has_value) {
      config.batch_max =
          static_cast<std::size_t>(parse_positive_int(argv[++i], "--batch-max"));
    } else if (arg == "--max-line-bytes" && has_value) {
      config.max_line_bytes = static_cast<std::size_t>(
          parse_positive_int(argv[++i], "--max-line-bytes"));
    } else if (arg == "--max-clients" && has_value) {
      config.max_clients =
          static_cast<std::size_t>(parse_positive_int(argv[++i], "--max-clients"));
    } else if (arg == "--deadline-ms" && has_value) {
      config.default_deadline_ms = parse_nonnegative(argv[++i], "--deadline-ms");
      load.deadline_ms = config.default_deadline_ms;
    } else if (arg == "--metrics-out" && has_value) {
      config.metrics_out = argv[++i];
    } else if (arg == "--metrics-every" && has_value) {
      config.metrics_every = parse_u64(argv[++i], "--metrics-every");
    } else if (arg == "--slow-us" && has_value) {
      config.slow_us = parse_u64(argv[++i], "--slow-us");
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--requests" && has_value) {
      load.requests = parse_u64(argv[++i], "--requests");
    } else if (arg == "--connections" && has_value) {
      load.connections = parse_positive_int(argv[++i], "--connections");
    } else if (arg == "--pipeline" && has_value) {
      load.pipeline =
          static_cast<std::uint64_t>(parse_positive_int(argv[++i], "--pipeline"));
    } else if (arg == "--seed" && has_value) {
      load.seed = parse_u64(argv[++i], "--seed");
    } else if (arg == "--param-sets" && has_value) {
      load.param_sets = parse_positive_int(argv[++i], "--param-sets");
    } else if (arg == "--inverse-every" && has_value) {
      load.inverse_every =
          parse_positive_int(argv[++i], "--inverse-every");
    } else {
      std::cerr << "unknown serve option: " << arg << "\n";
      return usage();
    }
  }

  if (selftest) {
    return serve_selftest(std::move(config), std::move(load));
  }

  config.validate();
  // First SIGINT/SIGTERM: stop accepting, drain every admitted request,
  // flush the durable metrics snapshot, exit 3. Second signal: 130.
  pftk::robust::ShutdownGuard shutdown(/*hard_exit_code=*/130);

  if (workers >= 2) {
    // Self-healing pool: parent binds + supervises, workers serve. A
    // single worker (--workers 1 or no flag) takes the plain in-process
    // path below — supervision fully disengaged, output unchanged.
    sup.workers = workers;
    sup.stop = pftk::robust::ShutdownGuard::stop_flag();
    sup.validate();
    std::cout << "serve: supervising " << workers << " worker(s) on "
              << config.socket_path << " (restart budget " << sup.restart_budget
              << " per " << sup.restart_window_s << "s";
    if (sup.stall_timeout_ms > 0.0) {
      std::cout << ", stall timeout " << sup.stall_timeout_ms << "ms";
    }
    std::cout << ")" << std::endl;
    const auto report = pftk::serve::run_supervised_serve(sup);
    std::cout << report.describe() << "\n";
    if (!report.fleet_accounting_ok) {
      std::cerr << "error: fleet accounting identity violated\n";
    }
    if (report.gave_up) {
      std::cerr << "error: supervisor gave up (restart budget exhausted)"
                << (sup.postmortem_path.empty()
                        ? ""
                        : "; post-mortem at " + sup.postmortem_path)
                << "\n";
    }
    return report.exit_code;
  }

  pftk::serve::Server server(config);
  server.start();
  std::cout << "serve: listening on " << config.socket_path << " ("
            << config.shards << " shard(s), queue depth " << config.queue_depth
            << ", batch max " << config.batch_max << ")" << std::endl;
  while (!pftk::robust::ShutdownGuard::stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "serve: draining..." << std::endl;
  server.request_stop();
  const auto summary = server.wait();
  std::cout << summary.describe() << "\n";
  if (!summary.accounting_ok()) {
    std::cerr << "error: serve accounting identity violated\n";
    return 1;
  }
  // The daemon only ever stops on request — the documented interrupted
  // exit code is the *successful* outcome here.
  return 3;
}

int cmd_bench(int argc, char** argv) {
  pftk::exp::MicroBenchConfig config;
  bool want_json = false;
  bool gate_obs = false;
  std::string json_path = "BENCH_micro.json";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      config = pftk::exp::MicroBenchConfig::smoke();
    } else if (arg == "--gate") {
      gate_obs = true;
    } else if (arg == "--json") {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else {
      std::cerr << "unknown bench option: " << arg << "\n";
      return usage();
    }
  }

  const auto report = pftk::exp::run_micro_bench(config);

  pftk::exp::TextTable t({"benchmark", "best", "unit", "per second"});
  for (const auto& r : report.results) {
    t.add_row({r.name, pftk::exp::fmt(r.value, 2), r.unit,
               pftk::exp::fmt(r.per_second, 0)});
  }
  std::cout << "micro-benchmarks, mode " << report.mode << ", best of "
            << report.repeats << " repeats\n\n";
  t.print(std::cout);
  std::cout << "\nbatched vs scalar speedup: approx "
            << pftk::exp::fmt(report.approx_batch_speedup, 2) << "x, full "
            << pftk::exp::fmt(report.full_batch_speedup, 2) << "x\n"
            << "batched max relative error " << report.batch_max_rel_err
            << " (tolerance " << report.batch_tolerance << "): "
            << (report.equivalence_ok ? "ok" : "FAIL") << "\n"
            << "event-loop obs overhead "
            << pftk::exp::fmt(report.obs_overhead_ratio, 3) << "x (tolerance "
            << pftk::exp::fmt(report.obs_overhead_tolerance, 2) << "x): "
            << (report.obs_overhead_ok() ? "ok" : (gate_obs ? "FAIL" : "high")) << "\n"
            << "disarmed failpoint overhead "
            << pftk::exp::fmt(report.failpoint_overhead_ratio, 3) << "x (tolerance "
            << pftk::exp::fmt(report.failpoint_overhead_tolerance, 2) << "x): "
            << (report.failpoint_overhead_ok() ? "ok" : (gate_obs ? "FAIL" : "high"))
            << "\n"
            << "disarmed span overhead "
            << pftk::exp::fmt(report.span_overhead_ratio, 3) << "x (tolerance "
            << pftk::exp::fmt(report.span_overhead_tolerance, 2) << "x): "
            << (report.span_overhead_ok() ? "ok" : (gate_obs ? "FAIL" : "high"))
            << "\n"
            << "disarmed supervision overhead "
            << pftk::exp::fmt(report.supervision_overhead_ratio, 3)
            << "x (tolerance "
            << pftk::exp::fmt(report.supervision_overhead_tolerance, 2) << "x): "
            << (report.supervision_overhead_ok() ? "ok"
                                                 : (gate_obs ? "FAIL" : "high"))
            << "\n"
            << "trace mmap vs istream speedup "
            << pftk::exp::fmt(report.trace_mmap_speedup, 2) << "x (min "
            << pftk::exp::fmt(report.trace_mmap_min_speedup, 2) << "x): "
            << (report.trace_mmap_ok() ? "ok" : (gate_obs ? "FAIL" : "low")) << "\n"
            << "trace fast-path parity (events + report): "
            << (report.trace_parity_ok ? "ok" : "FAIL") << "\n";

  if (want_json) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "error: cannot open " << json_path << " for writing\n";
      return 1;
    }
    pftk::exp::write_bench_json(os, report);
    std::cout << "json written to " << json_path << "\n";
  }
  if (!report.equivalence_ok) {
    return 1;
  }
  // Parity is a correctness contract, not a performance number: a fast
  // path that disagrees with the reference reader fails every run,
  // gated or not — exactly like the batched-model equivalence check.
  if (!report.trace_parity_ok) {
    std::cerr << "error: trace fast-path parity check failed (mmap reader "
                 "disagrees with the istream reference)\n";
    return 1;
  }
  if (gate_obs && !report.trace_mmap_ok()) {
    std::cerr << "error: trace mmap speedup gate failed ("
              << pftk::exp::fmt(report.trace_mmap_speedup, 2) << "x < "
              << pftk::exp::fmt(report.trace_mmap_min_speedup, 2) << "x)\n";
    return 1;
  }
  if (gate_obs && !report.obs_overhead_ok()) {
    std::cerr << "error: obs overhead gate failed ("
              << pftk::exp::fmt(report.obs_overhead_ratio, 3) << "x > "
              << pftk::exp::fmt(report.obs_overhead_tolerance, 2) << "x)\n";
    return 1;
  }
  if (gate_obs && !report.failpoint_overhead_ok()) {
    std::cerr << "error: failpoint overhead gate failed ("
              << pftk::exp::fmt(report.failpoint_overhead_ratio, 3) << "x > "
              << pftk::exp::fmt(report.failpoint_overhead_tolerance, 2) << "x)\n";
    return 1;
  }
  if (gate_obs && !report.span_overhead_ok()) {
    std::cerr << "error: span overhead gate failed ("
              << pftk::exp::fmt(report.span_overhead_ratio, 3) << "x > "
              << pftk::exp::fmt(report.span_overhead_tolerance, 2) << "x)\n";
    return 1;
  }
  if (gate_obs && !report.supervision_overhead_ok()) {
    std::cerr << "error: supervision overhead gate failed ("
              << pftk::exp::fmt(report.supervision_overhead_ratio, 3) << "x > "
              << pftk::exp::fmt(report.supervision_overhead_tolerance, 2)
              << "x)\n";
    return 1;
  }
  return 0;
}

int cmd_obs(int argc, char** argv) {
  if (argc < 4 || std::string(argv[2]) != "summarize") {
    return usage();
  }
  std::vector<std::string> paths;
  bool want_json = false;
  std::string json_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown obs option: " << arg << "\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    return usage();
  }

  // Several files (e.g. the supervisor's per-worker snapshots) fold into
  // one bundle with the shard-merge semantics before summarizing —
  // counters sum, gauges max, events concatenate.
  pftk::obs::ObsBundle bundle;
  for (const auto& path : paths) {
    pftk::obs::ObsReadReport read_report;
    const auto part = pftk::obs::load_obs_file(path, &read_report);
    if (!read_report.clean()) {
      std::cerr << "warning: " << path << ": salvaged "
                << read_report.records_parsed << " of "
                << read_report.lines_total << " line(s), "
                << read_report.lines_dropped << " dropped (first error: "
                << read_report.first_error << ")\n";
    }
    pftk::obs::merge_obs_bundles(bundle, part);
  }

  const auto breakdown = pftk::obs::summarize_events(bundle.events);
  if (want_json) {
    if (json_path.empty()) {
      pftk::obs::write_breakdown_json(std::cout, breakdown, bundle.source,
                                      bundle.events_dropped);
    } else {
      std::ofstream os(json_path);
      if (!os) {
        std::cerr << "error: cannot open " << json_path << " for writing\n";
        return 1;
      }
      pftk::obs::write_breakdown_json(os, breakdown, bundle.source,
                                      bundle.events_dropped);
      std::cout << "json written to " << json_path << "\n";
    }
  } else {
    std::cout << pftk::obs::render_breakdown_text(breakdown, bundle.source,
                                                  bundle.events_dropped);
  }
  return 0;
}

int cmd_prof(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string path = argv[2];
  bool want_json = false;
  std::string json_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else {
      std::cerr << "unknown prof option: " << arg << "\n";
      return usage();
    }
  }

  const auto drained = pftk::obs::flight::load_spans_file(path);
  const auto report = pftk::obs::flight::profile_spans(drained);
  if (want_json) {
    if (json_path.empty()) {
      pftk::obs::flight::write_prof_json(std::cout, report);
    } else {
      std::ofstream os(json_path);
      if (!os) {
        std::cerr << "error: cannot open " << json_path << " for writing\n";
        return 1;
      }
      pftk::obs::flight::write_prof_json(os, report);
      std::cout << "json written to " << json_path << "\n";
    }
  } else {
    std::cout << pftk::obs::flight::render_prof_text(report);
  }
  // The span-count accounting identity is a correctness contract, not a
  // report detail: a serve recording whose markers do not balance means
  // a request path bumped a counter without its marker (or vice versa).
  // A recording that overflowed its rings can legitimately disagree, so
  // drops demote the violation to the warning already printed above.
  if (report.serve.present && !report.serve.holds() && report.dropped == 0) {
    std::cerr << "error: serve span counts violate the accounting identity\n";
    return 1;
  }
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const auto events = pftk::trace::load_trace_file(argv[2]);
  const int threshold = argc > 3 ? std::atoi(argv[3]) : 3;

  const auto validation = pftk::trace::validate_trace(events);
  if (!validation.ok()) {
    std::cerr << "trace has " << validation.violations.size() << " violations; first: "
              << validation.violations.front().message << " (event "
              << validation.violations.front().event_index << ")\n";
    return 1;
  }
  const auto row = pftk::trace::summarize_trace(events, threshold);
  std::cout << "events " << events.size() << ", packets " << row.packets_sent
            << ", loss indications " << row.loss_indications << " (p = "
            << pftk::exp::fmt(row.observed_p, 4) << ")\n"
            << "TD " << row.td_events << "; timeout depths";
  for (std::size_t k = 0; k < row.timeouts_by_depth.size(); ++k) {
    std::cout << " T" << k << "=" << row.timeouts_by_depth[k];
  }
  std::cout << "\nRTT " << pftk::exp::fmt(row.avg_rtt, 3) << " s, T0 "
            << pftk::exp::fmt(row.avg_timeout, 3) << " s, RTT/window corr "
            << pftk::exp::fmt(row.rtt_window_correlation, 3) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global fault-injection flag: pulled out before dispatch so every
  // subcommand's persistence path can be chaos-tested. Disarmed (the
  // default), the failpoint checks are a single relaxed atomic load.
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--failpoints" && i + 1 < argc) {
        try {
          pftk::robust::FailpointRegistry::instance().arm_specs(argv[++i]);
        } catch (const std::exception& e) {
          std::cerr << "error: " << e.what() << "\n";
          return 2;
        }
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  // Global flight-recorder flags, same pre-dispatch extraction: any
  // subcommand can record spans with zero per-command plumbing. The
  // drain+write happens after the command returns (below), so arming
  // never touches a command's stdout or data files.
  std::string trace_spans_path;
  {
    std::size_t ring = pftk::obs::flight::Recorder::kDefaultRingCapacity;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace-spans" && i + 1 < argc) {
        trace_spans_path = argv[++i];
      } else if (arg == "--span-ring" && i + 1 < argc) {
        try {
          ring = static_cast<std::size_t>(parse_positive_int(argv[++i], "--span-ring"));
        } catch (const std::exception& e) {
          std::cerr << "error: " << e.what() << "\n";
          return 2;
        }
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    if (!trace_spans_path.empty()) {
      pftk::obs::flight::Recorder::instance().arm(ring);
    } else if (ring != pftk::obs::flight::Recorder::kDefaultRingCapacity) {
      std::cerr << "error: --span-ring requires --trace-spans\n";
      return 2;
    }
  }
  if (argc < 2) {
    return usage();
  }
  const std::string cmd = argv[1];
  // Drains the rings and writes the span file; called on every exit
  // path below (including errors — a failing command's partial
  // recording is often exactly what the user wants to see).
  const auto flush_spans = [&trace_spans_path, &cmd](int rc) -> int {
    if (trace_spans_path.empty()) {
      return rc;
    }
    auto& recorder = pftk::obs::flight::Recorder::instance();
    recorder.disarm();
    try {
      const auto drained = recorder.drain();
      pftk::obs::flight::save_spans_file(trace_spans_path, drained,
                                         "pftk " + cmd);
      std::cerr << "flight recorder: " << drained.spans.size() << " span(s) from "
                << drained.threads << " thread(s) written to "
                << trace_spans_path
                << (drained.dropped > 0
                        ? " (" + std::to_string(drained.dropped) +
                              " overwritten; raise --span-ring)"
                        : "")
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << "error: flight recorder: " << e.what() << "\n";
      return rc == 0 ? 1 : rc;
    }
    return rc;
  };
  try {
    if (cmd == "model") {
      return flush_spans(cmd_model(argc, argv));
    }
    if (cmd == "latency") {
      return flush_spans(cmd_latency(argc, argv));
    }
    if (cmd == "provision") {
      return flush_spans(cmd_provision(argc, argv));
    }
    if (cmd == "list") {
      return flush_spans(cmd_list());
    }
    if (cmd == "simulate") {
      return flush_spans(cmd_simulate(argc, argv));
    }
    if (cmd == "analyze") {
      return flush_spans(cmd_analyze(argc, argv));
    }
    if (cmd == "faultsim") {
      return flush_spans(cmd_faultsim(argc, argv));
    }
    if (cmd == "campaign") {
      return flush_spans(cmd_campaign(argc, argv));
    }
    if (cmd == "explore") {
      return flush_spans(cmd_explore(argc, argv));
    }
    if (cmd == "chaos") {
      return flush_spans(cmd_chaos(argc, argv));
    }
    if (cmd == "serve") {
      return flush_spans(cmd_serve(argc, argv));
    }
    if (cmd == "bench") {
      return flush_spans(cmd_bench(argc, argv));
    }
    if (cmd == "obs") {
      return flush_spans(cmd_obs(argc, argv));
    }
    if (cmd == "prof") {
      return flush_spans(cmd_prof(argc, argv));
    }
  } catch (const pftk::model::ParamError& e) {
    // Bad parameter values are usage errors (exit 2), distinct from
    // runtime failures (exit 1) — supervisors retry the latter, not the
    // former.
    std::cerr << "error: " << e.what() << "\n";
    return flush_spans(2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return flush_spans(1);
  }
  return usage();
}
