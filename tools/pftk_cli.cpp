// pftk — command-line front end to the library.
//
//   pftk model <p> <rtt_s> <t0_s> <wm> [b]         closed-form predictions
//   pftk latency <packets> <p> <rtt_s> <t0_s> <wm> short-flow latency
//   pftk provision <rate_pps> <rtt_s> <t0_s> <wm>   inverse model: max loss
//                                                   rate / required window
//   pftk list                                      path-profile catalogue
//   pftk simulate <sender> <receiver> <secs> [seed] [trace-file]
//                                                  run + Table-II row
//   pftk analyze <trace-file> [dupack_threshold]   offline trace analysis
//   pftk faultsim <sender> <receiver> <secs> <schedule> [seed] [trace-file]
//                                                  run under injected faults
//   pftk campaign <spec-file> [--threads N] [--journal FILE] [--resume]
//                                                  supervised grid campaign
//   pftk explore [options | --replay FILE]         bounded model checking:
//                                                  exhaustive loss/timing
//                                                  nondeterminism exploration
//   pftk bench [--smoke] [--gate] [--json [FILE]]  hot-path micro-benchmarks
//   pftk obs summarize <obs-file> [--json [FILE]]  TD/TO loss-indication split
//
// simulate, faultsim, and campaign additionally accept
//   --metrics-out FILE    write a pftk-obs/1 metrics+events bundle
//                         (Prometheus text when FILE ends in .prom)
//   --trace-events FILE   write the connection-event timeline as JSONL
// Observability is passive: with the flags present, stdout and any trace
// file stay byte-identical to a run without them (all obs notices go to
// stderr), and a fixed seed yields a byte-identical event stream.
//
// The simulate/analyze pair mirrors the paper's tcpdump-then-postprocess
// workflow: `simulate ... trace.tsv` writes a capture that `analyze`
// (or any external tool) can consume later. `faultsim` layers a
// declarative impairment schedule (see sim/fault_injector.hpp, e.g.
// "blackout@120+5;loss@600+60:0.05") over the path's loss process and
// runs with a watchdog armed, so pathological schedules fail with a
// diagnostic instead of hanging. `campaign` runs a declarative
// profile x seed x scenario x model grid (see exp/campaign/) on a worker
// pool with per-run deadlines, retry-with-backoff on transient failures,
// and a resumable JSONL checkpoint journal; it exits nonzero with a
// failure-taxonomy summary when items were lost. `bench` times the
// hot paths (event-queue dispatch, scalar vs. batched model evaluation,
// trace parsing) and emits schema-stable BENCH_micro.json; it exits
// nonzero if the batched path drifts from the scalar path beyond 1e-12.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/markov_model.hpp"
#include "core/model_registry.hpp"
#include "core/inverse_model.hpp"
#include "core/short_flow_model.hpp"
#include "core/throughput_model.hpp"
#include "exp/campaign/campaign_runner.hpp"
#include "exp/campaign/chaos.hpp"
#include "mc/explorer.hpp"
#include "mc/trace_file.hpp"
#include "exp/hour_trace_experiment.hpp"
#include "exp/micro_bench.hpp"
#include "exp/table_format.hpp"
#include "obs/conn_event_trace.hpp"
#include "obs/event_loop_stats.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/standard_metrics.hpp"
#include "obs/summarize.hpp"
#include "robust/failpoint.hpp"
#include "robust/shutdown.hpp"
#include "sim/fault_injector.hpp"
#include "sim/sim_watchdog.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/trace_summary.hpp"
#include "trace/trace_validator.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  pftk model <p> <rtt_s> <t0_s> <wm> [b]\n"
               "  pftk latency <packets> <p> <rtt_s> <t0_s> <wm>\n"
               "  pftk provision <rate_pps> <rtt_s> <t0_s> <wm>\n"
               "  pftk list\n"
               "  pftk simulate <sender> <receiver> <seconds> [seed] [trace-file]\n"
               "  pftk analyze <trace-file> [dupack_threshold]\n"
               "  pftk faultsim <sender> <receiver> <seconds> <schedule> [seed] [trace-file]\n"
               "      schedule: kind@start[+duration][#count][:rate[:magnitude]] ';'-separated\n"
               "      kinds: blackout, loss, dup, reorder, delay  (e.g. blackout@120+5)\n"
               "  pftk faultsim --list-failpoints\n"
               "      enumerate every registered failpoint site, one per line\n"
               "  pftk explore [--packets N] [--window W] [--ack-every B] [--ack-loss]\n"
               "               [--loss-choices N] [--ties K] [--tie-choices N]\n"
               "               [--faults SPEC] [--depth N] [--max-states N] [--no-prune]\n"
               "               [--split-depth N] [--threads N|-j N] [--seed N] [--out FILE]\n"
               "      exhaustive bounded exploration of loss/timing nondeterminism in a\n"
               "      small finite transfer; every branch runs the live invariant\n"
               "      checker plus model-assumption checks. exits 0 on a complete clean\n"
               "      enumeration, 1 with a replayable counterexample written to --out\n"
               "      on a violation, 3 when interrupted or a budget cut the search\n"
               "  pftk explore --replay FILE\n"
               "      re-execute a recorded counterexample under strict verification;\n"
               "      exits 0 iff the trace reproduces (same checks, same end digest)\n"
               "  pftk campaign <spec-file> [--threads N] [--journal FILE] [--resume]\n"
               "                [--fsync-every N]\n"
               "      supervised grid campaign (see EXPERIMENTS.md for the spec and\n"
               "      journal formats); exits 1 with a taxonomy summary on partial\n"
               "      loss, 3 when interrupted by SIGINT/SIGTERM (journal stays\n"
               "      resumable; a second signal hard-exits with 130)\n"
               "  pftk chaos <spec-file> [--threads N] [--dir DIR] [--fsync-every N]\n"
               "             [--failpoint SPEC]...\n"
               "      crash-recovery matrix: fork, crash at each journal failpoint,\n"
               "      resume, and verify byte-identical convergence; exits 1 on any\n"
               "      divergence\n"
               "  pftk bench [--smoke] [--gate] [--json [FILE]]\n"
               "      hot-path micro-benchmarks; --json writes BENCH_micro.json (or\n"
               "      FILE); exits 1 if batched model evaluation drifts from scalar,\n"
               "      or (with --gate) if obs overhead on dispatch exceeds 1.10x\n"
               "  pftk obs summarize <obs-file> [--json [FILE]]\n"
               "      TD/TO loss-indication breakdown of a pftk-obs/1 event file\n"
               "\n"
               "simulate/faultsim/campaign also accept --metrics-out FILE (pftk-obs/1\n"
               "bundle; Prometheus text if FILE ends in .prom) and --trace-events FILE\n"
               "(connection-event JSONL); stdout stays byte-identical either way\n"
               "\n"
               "every command accepts --failpoints \"name:after=N:action=A[:arg=K];...\"\n"
               "(actions: error, short_write, enospc, delay, crash) to inject faults\n"
               "on persistence paths; disarmed failpoints are byte-invisible\n";
  return 2;
}

/// Observability outputs requested on the command line.
struct ObsOptions {
  std::string metrics_out;   ///< --metrics-out FILE
  std::string trace_events;  ///< --trace-events FILE
  [[nodiscard]] bool enabled() const noexcept {
    return !metrics_out.empty() || !trace_events.empty();
  }
};

/// Pulls --metrics-out/--trace-events out of argv in place (compacting
/// the remainder) so the positional grammars stay untouched.
ObsOptions extract_obs_flags(int& argc, char** argv) {
  ObsOptions opts;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      opts.metrics_out = argv[++i];
    } else if (arg == "--trace-events" && i + 1 < argc) {
      opts.trace_events = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return opts;
}

/// Mirrors a finished connection's counters into `shard`. Reads only
/// already-computed state, so it is safe after a watchdog abort too.
void record_run_metrics(const pftk::obs::StandardMetrics& met,
                        pftk::obs::MetricsShard& shard,
                        const pftk::sim::Connection& conn,
                        const pftk::obs::ConnEventTrace& etrace,
                        const pftk::obs::EventLoopStats& loop, double avg_rtt) {
  const auto& s = conn.sender().stats();
  shard.add(met.packets_sent, static_cast<double>(s.transmissions));
  shard.add(met.retransmissions, static_cast<double>(s.retransmissions));
  shard.add(met.td_indications, static_cast<double>(s.fast_retransmits));
  shard.add(met.timeouts, static_cast<double>(s.timeouts));
  shard.add(met.acks, static_cast<double>(s.acks_received));
  shard.add(met.dup_acks, static_cast<double>(s.dup_acks_received));
  met.record_event_loop(shard, loop);
  shard.add(met.conn_events, static_cast<double>(etrace.recorded()));
  shard.add(met.conn_events_dropped, static_cast<double>(etrace.dropped()));
  pftk::sim::FaultStats faults;
  if (const auto* f = conn.forward_link().faults()) {
    faults += f->stats();
  }
  if (const auto* f = conn.reverse_link().faults()) {
    faults += f->stats();
  }
  shard.add(met.fault_offered, static_cast<double>(faults.offered));
  shard.add(met.fault_dropped, static_cast<double>(faults.total_dropped()));
  shard.add(met.fault_duplicated, static_cast<double>(faults.duplicated));
  shard.add(met.fault_reordered, static_cast<double>(faults.reordered));
  shard.add(met.fault_delayed, static_cast<double>(faults.delayed));
  if (avg_rtt > 0.0) {
    shard.observe(met.rtt_seconds, avg_rtt);
  }
}

/// Writes the requested obs files. Notices go to stderr so stdout stays
/// byte-identical with and without the flags (CI compares them).
void export_obs_outputs(const ObsOptions& opts, const pftk::obs::ObsBundle& bundle) {
  if (!opts.metrics_out.empty()) {
    pftk::obs::save_obs_file(opts.metrics_out, bundle);
    std::cerr << "obs: metrics written to " << opts.metrics_out << "\n";
  }
  if (!opts.trace_events.empty()) {
    pftk::obs::ObsBundle events_only;
    events_only.source = bundle.source;
    events_only.events = bundle.events;
    events_only.events_dropped = bundle.events_dropped;
    pftk::obs::save_obs_file(opts.trace_events, events_only);
    std::cerr << "obs: " << events_only.events.size() << " connection events written to "
              << opts.trace_events << "\n";
  }
}

int cmd_model(int argc, char** argv) {
  if (argc < 6) {
    return usage();
  }
  pftk::model::ModelParams params;
  params.p = std::atof(argv[2]);
  params.rtt = std::atof(argv[3]);
  params.t0 = std::atof(argv[4]);
  params.wm = std::atof(argv[5]);
  params.b = argc > 6 ? std::atoi(argv[6]) : 2;
  params.validate();

  std::cout << params.describe() << "\n";
  for (const auto kind : pftk::model::all_model_kinds) {
    std::cout << "  " << pftk::model::model_name(kind) << ": "
              << pftk::model::evaluate_model(kind, params) << " pkts/s\n";
  }
  std::cout << "  throughput T(p): " << pftk::model::throughput_model_rate(params)
            << " pkts/s\n";
  if (params.p > 0.0) {
    std::cout << "  Markov (numerical): " << pftk::model::markov_model_send_rate(params)
              << " pkts/s\n";
  }
  return 0;
}

int cmd_latency(int argc, char** argv) {
  if (argc < 7) {
    return usage();
  }
  const auto d = static_cast<std::uint64_t>(std::atoll(argv[2]));
  pftk::model::ModelParams params;
  params.p = std::atof(argv[3]);
  params.rtt = std::atof(argv[4]);
  params.t0 = std::atof(argv[5]);
  params.wm = std::atof(argv[6]);
  const auto bd = pftk::model::short_flow_breakdown(d, params);
  std::cout << "transfer of " << d << " packets @ " << params.describe() << "\n"
            << "  slow start:    " << bd.slow_start_seconds << " s ("
            << bd.expected_slow_start_packets << " pkts)\n"
            << "  loss recovery: " << bd.loss_recovery_seconds << " s (P[loss] = "
            << bd.loss_probability << ")\n"
            << "  steady state:  " << bd.steady_state_seconds << " s\n"
            << "  total:         " << bd.total_seconds << " s\n";
  return 0;
}

int cmd_provision(int argc, char** argv) {
  if (argc < 6) {
    return usage();
  }
  const double target = std::atof(argv[2]);
  pftk::model::ModelParams params;
  params.rtt = std::atof(argv[3]);
  params.t0 = std::atof(argv[4]);
  params.wm = std::atof(argv[5]);
  params.p = 0.01;  // placeholder; each inversion ignores one field
  const double max_p = pftk::model::max_loss_for_rate(params, target);
  std::cout << "target " << target << " pkts/s @ RTT " << params.rtt << " s, T0 "
            << params.t0 << " s, Wm " << params.wm << ":\n"
            << "  max tolerable loss-indication rate: " << max_p
            << (max_p == 0.0 ? "  (unreachable: ceiling Wm/RTT is below target)" : "")
            << "\n";
  for (const double p : {0.001, 0.01, 0.05}) {
    pftk::model::ModelParams probe = params;
    probe.p = p;
    const double wm = pftk::model::required_window_for_rate(probe, target);
    std::cout << "  required window at p=" << p << ": " << wm << " packets\n";
  }
  return 0;
}

int cmd_list() {
  for (const auto& profile : pftk::exp::table2_profiles()) {
    std::cout << profile.label() << "\n";
  }
  std::cout << pftk::exp::modem_profile().label() << " (modem; use the fig11 bench)\n";
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  const ObsOptions obs_opts = extract_obs_flags(argc, argv);
  if (argc < 5) {
    return usage();
  }
  const auto profile = pftk::exp::profile_by_label(argv[2], argv[3]);
  const double duration = std::atof(argv[4]);
  const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1998;
  const std::string trace_path = argc > 6 ? argv[6] : "";

  pftk::sim::Connection conn(pftk::exp::make_connection_config(profile, seed));
  pftk::trace::TraceRecorder recorder;
  conn.set_observer(&recorder);
  pftk::obs::ConnEventTrace etrace;
  pftk::obs::EventLoopStats loop;
  if (obs_opts.enabled()) {
    conn.attach_observability(&etrace, &loop);
  }
  const auto run = conn.run_for(duration);

  auto row = pftk::trace::summarize_trace(recorder.events(), profile.dupack_threshold());
  std::cout << profile.label() << ", " << duration << " s, seed " << seed << "\n"
            << "  packets sent " << row.packets_sent << ", loss indications "
            << row.loss_indications << " (p = " << pftk::exp::fmt(row.observed_p, 4)
            << "), TD " << row.td_events << "\n"
            << "  RTT " << pftk::exp::fmt(row.avg_rtt, 3) << " s, T0 "
            << pftk::exp::fmt(row.avg_timeout, 3) << " s, send rate "
            << pftk::exp::fmt(run.send_rate, 2) << " pkts/s\n";
  if (!trace_path.empty()) {
    pftk::trace::save_trace_file(trace_path, recorder.events());
    std::cout << "  trace written to " << trace_path << " (" << recorder.events().size()
              << " events)\n";
  }
  if (obs_opts.enabled()) {
    pftk::obs::MetricsRegistry registry;
    const auto met = pftk::obs::StandardMetrics::register_on(registry);
    registry.freeze(1);
    record_run_metrics(met, registry.shard(0), conn, etrace, loop, row.avg_rtt);
    pftk::obs::ObsBundle bundle;
    bundle.source = "simulate";
    bundle.metrics = registry.snapshot();
    bundle.events = etrace.events();
    bundle.events_dropped = etrace.dropped();
    export_obs_outputs(obs_opts, bundle);
  }
  return 0;
}

int cmd_faultsim(int argc, char** argv) {
  // Site discovery: which code paths can be chaos-tested right now.
  if (argc >= 3 && std::string(argv[2]) == "--list-failpoints") {
    for (const auto& [name, description] :
         pftk::robust::FailpointRegistry::instance().known_sites()) {
      std::cout << name << "\t" << description << "\n";
    }
    return 0;
  }
  const ObsOptions obs_opts = extract_obs_flags(argc, argv);
  if (argc < 6) {
    return usage();
  }
  const auto profile = pftk::exp::profile_by_label(argv[2], argv[3]);
  const double duration = std::atof(argv[4]);
  const auto schedule = pftk::sim::FaultSchedule::parse(argv[5]);
  const std::uint64_t seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 1998;
  const std::string trace_path = argc > 7 ? argv[7] : "";

  auto config = pftk::exp::make_connection_config(profile, seed);
  config.forward_faults = schedule;
  pftk::sim::Connection conn(config);
  conn.enable_watchdog();
  pftk::trace::TraceRecorder recorder;
  conn.set_observer(&recorder);
  pftk::obs::ConnEventTrace etrace;
  pftk::obs::EventLoopStats loop;
  if (obs_opts.enabled()) {
    conn.attach_observability(&etrace, &loop);
  }

  std::cout << profile.label() << ", " << duration << " s, seed " << seed
            << "\n  schedule: " << schedule.describe() << "\n";
  int exit_code = 0;
  double avg_rtt = 0.0;
  try {
    const auto run = conn.run_for(duration);
    auto row =
        pftk::trace::summarize_trace(recorder.events(), profile.dupack_threshold());
    avg_rtt = row.avg_rtt;
    std::cout << "  packets sent " << row.packets_sent << ", loss indications "
              << row.loss_indications << " (p = " << pftk::exp::fmt(row.observed_p, 4)
              << "), send rate " << pftk::exp::fmt(run.send_rate, 2) << " pkts/s\n"
              << "  faults: " << run.forward_faults.total_dropped() << " dropped ("
              << run.forward_faults.dropped_blackout << " blackout, "
              << run.forward_faults.dropped_loss << " loss), "
              << run.forward_faults.duplicated << " duplicated, "
              << run.forward_faults.reordered << " reordered, "
              << run.forward_faults.delayed << " delayed, of "
              << run.forward_faults.offered << " offered\n";
  } catch (const pftk::sim::WatchdogError& e) {
    std::cerr << "watchdog tripped:\n" << e.snapshot().describe() << "\n";
    exit_code = 1;
  }

  // Trace write + verification. The immediate lenient re-read catches
  // torn writes (full disk, crashed filesystem) while the capture can
  // still be regenerated instead of at analysis time weeks later.
  pftk::trace::TraceReadReport trace_report;
  if (exit_code == 0 && !trace_path.empty()) {
    pftk::trace::save_trace_file(trace_path, recorder.events());
    std::cout << "  trace written to " << trace_path << " (" << recorder.events().size()
              << " events)\n";
    (void)pftk::trace::load_trace_file_lenient(trace_path, &trace_report);
    if (!trace_report.clean()) {
      std::cerr << "warning: " << trace_path << ": " << trace_report.describe() << "\n";
    }
  }

  if (obs_opts.enabled()) {
    pftk::obs::MetricsRegistry registry;
    const auto met = pftk::obs::StandardMetrics::register_on(registry);
    registry.freeze(1);
    auto& shard = registry.shard(0);
    record_run_metrics(met, shard, conn, etrace, loop, avg_rtt);
    if (exit_code != 0) {
      shard.add(met.watchdog_trips, 1.0);
    }
    shard.add(met.trace_lines_dropped, static_cast<double>(trace_report.lines_dropped));
    shard.add(met.trace_bytes_dropped, static_cast<double>(trace_report.bytes_dropped));
    if (!trace_report.clean()) {
      shard.add(met.trace_files_dirty, 1.0);
    }
    pftk::obs::ObsBundle bundle;
    bundle.source = "faultsim";
    bundle.metrics = registry.snapshot();
    bundle.events = etrace.events();
    bundle.events_dropped = etrace.dropped();
    export_obs_outputs(obs_opts, bundle);
  }
  return exit_code;
}

int cmd_campaign(int argc, char** argv) {
  const ObsOptions obs_opts = extract_obs_flags(argc, argv);
  if (argc < 3) {
    return usage();
  }
  const std::string spec_path = argv[2];
  pftk::exp::campaign::CampaignRunnerOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (arg == "--journal" && i + 1 < argc) {
      options.journal_path = argv[++i];
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--fsync-every" && i + 1 < argc) {
      options.fsync_every =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::cerr << "unknown campaign option: " << arg << "\n";
      return usage();
    }
  }

  // Graceful shutdown: first SIGINT/SIGTERM stops admitting items and
  // drains; the second hard-exits. The runner flushes the journal on the
  // way out, so an interrupted campaign is always resumable.
  pftk::robust::ShutdownGuard shutdown(/*hard_exit_code=*/130);
  options.stop = pftk::robust::ShutdownGuard::stop_flag();

  const auto spec = pftk::exp::campaign::CampaignSpec::parse_file(spec_path);
  pftk::exp::campaign::CampaignRunner runner(spec, options);
  const auto result = runner.run();

  std::cout << "campaign: " << result.items.size() << " items ("
            << spec.profiles.size() << " profiles x " << spec.seeds.size()
            << " seeds x " << std::max<std::size_t>(1, spec.scenarios.size())
            << " scenarios x " << std::max<std::size_t>(1, spec.models.size())
            << " models), " << options.threads << " worker(s)";
  if (result.resumed > 0) {
    std::cout << ", " << result.resumed << " replayed from journal";
  }
  std::cout << "\n\n";

  pftk::exp::TextTable t(
      {"item", "status", "tries", "packets", "rate", "predicted", "p", "rtt"});
  for (const auto& item : result.items) {
    using pftk::exp::campaign::ItemStatus;
    const char* status = item.status == ItemStatus::kOk ? "ok"
                         : item.status == ItemStatus::kNotRun ? "not run"
                         : item.status == ItemStatus::kFailedTransient
                             ? "lost (transient)"
                             : "lost (permanent)";
    if (item.ok()) {
      t.add_row({item.item.key(), status, std::to_string(item.attempts),
                 pftk::exp::fmt_u(item.metrics.packets_sent),
                 pftk::exp::fmt(item.metrics.send_rate, 2),
                 pftk::exp::fmt(item.metrics.predicted, 0),
                 pftk::exp::fmt(item.metrics.p, 4),
                 pftk::exp::fmt(item.metrics.rtt, 3)});
    } else {
      t.add_row({item.item.key(), status, std::to_string(item.attempts)});
    }
  }
  t.print(std::cout);

  std::cout << "\n" << result.report.describe() << "\n";

  // Surface trace-salvage damage as one line, not a screenful: campaigns
  // run unattended and the operator needs a single grep-able signal.
  std::size_t dirty_files = 0;
  std::size_t salvage_lines_dropped = 0;
  for (const auto& rr : result.report.read_reports) {
    if (!rr.clean()) {
      ++dirty_files;
      salvage_lines_dropped += rr.lines_dropped;
    }
  }
  if (dirty_files > 0) {
    std::cerr << "warning: trace salvage: " << dirty_files << " dirty file(s), "
              << salvage_lines_dropped << " line(s) dropped (see report)\n";
  }

  if (obs_opts.enabled()) {
    pftk::obs::ObsBundle bundle;
    bundle.source = "campaign";
    bundle.metrics = result.report.metrics;
    bundle.spans = result.report.spans;
    if (dirty_files > 0) {
      // Fold the salvage damage into the exported snapshot so the
      // counters match the warning above.
      pftk::obs::MetricsRegistry salvage;
      const auto met = pftk::obs::StandardMetrics::register_on(salvage);
      salvage.freeze(1);
      auto& shard = salvage.shard(0);
      std::size_t salvage_bytes = 0;
      for (const auto& rr : result.report.read_reports) {
        salvage_bytes += rr.bytes_dropped;
      }
      shard.add(met.trace_files_dirty, static_cast<double>(dirty_files));
      shard.add(met.trace_lines_dropped, static_cast<double>(salvage_lines_dropped));
      shard.add(met.trace_bytes_dropped, static_cast<double>(salvage_bytes));
      bundle.metrics.merge(salvage.snapshot());
    }
    export_obs_outputs(obs_opts, bundle);
  }

  if (result.interrupted) {
    // Dedicated exit code so supervisors can tell "stopped on request,
    // resume me" apart from "lost items". The journal was flushed and
    // contains only fully-settled records.
    std::cout << "interrupted: " << result.not_run
              << " item(s) not run; resume with --resume\n";
    if (!result.all_ok()) {
      std::cout << result.taxonomy_summary() << "\n";
    }
    return 3;
  }
  if (!result.all_ok()) {
    std::cout << result.taxonomy_summary() << "\n";
    return 1;
  }
  return 0;
}

/// Re-executes a saved counterexample and verifies it reproduces: same
/// divergence-free run, same violated check, same end-state digest.
int explore_replay(const std::string& path) {
  const auto trace = pftk::mc::load_trace_file(path);
  pftk::mc::Explorer explorer(trace.config);
  const auto outcome = explorer.replay(trace.choices);

  std::cout << "replay: " << path << "\n  config: " << trace.config.describe()
            << "\n  choices: " << pftk::mc::encode_choices(trace.choices) << "\n";
  if (outcome.diverged) {
    std::cout << "  DIVERGED: " << outcome.message << "\n";
    return 1;
  }
  const bool check_matches = outcome.violated ? (outcome.check == trace.check)
                                              : trace.check.empty();
  const bool digest_matches = outcome.digest == trace.digest;
  if (outcome.violated) {
    std::cout << "  violation reproduced: [" << outcome.check << "] "
              << outcome.message << "\n";
  } else {
    std::cout << "  branch ran clean\n";
  }
  std::cout << "  digest: " << outcome.digest.hex()
            << (digest_matches ? " (matches trace)" : " (MISMATCH)") << "\n";
  if (!check_matches) {
    std::cout << "  check mismatch: trace recorded ["
              << (trace.check.empty() ? "<none>" : trace.check) << "]\n";
  }
  return (check_matches && digest_matches) ? 0 : 1;
}

int cmd_explore(int argc, char** argv) {
  const ObsOptions obs_opts = extract_obs_flags(argc, argv);
  pftk::mc::ExploreConfig config;
  std::string out_path = "counterexample.pftk-mc";
  std::string replay_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--replay" && has_value) {
      replay_path = argv[++i];
    } else if (arg == "--packets" && has_value) {
      config.packets = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--window" && has_value) {
      config.window = std::atof(argv[++i]);
    } else if (arg == "--ack-every" && has_value) {
      config.ack_every = std::atoi(argv[++i]);
    } else if (arg == "--ack-loss") {
      config.ack_loss = true;
    } else if (arg == "--loss-choices" && has_value) {
      config.loss_choices = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--ties" && has_value) {
      config.tie_width = static_cast<std::uint32_t>(std::atoi(argv[++i]));
      if (config.tie_choices == 0) {
        config.tie_choices = 4;  // sensible default once ties are on
      }
    } else if (arg == "--tie-choices" && has_value) {
      config.tie_choices = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--faults" && has_value) {
      config.fault_schedule = argv[++i];
    } else if (arg == "--depth" && has_value) {
      config.depth = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--max-states" && has_value) {
      config.max_states = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--no-prune") {
      config.prune_visited = false;
    } else if (arg == "--split-depth" && has_value) {
      config.split_depth = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if ((arg == "--threads" || arg == "-j") && has_value) {
      config.threads = std::atoi(argv[++i]);
    } else if (arg == "--seed" && has_value) {
      config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--time-cap" && has_value) {
      config.time_cap = std::atof(argv[++i]);
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else {
      std::cerr << "unknown explore option: " << arg << "\n";
      return usage();
    }
  }
  if (!replay_path.empty()) {
    return explore_replay(replay_path);
  }

  // First SIGINT/SIGTERM stops between branches (partial counts are
  // reported, exit 3); the second hard-exits with 130.
  pftk::robust::ShutdownGuard shutdown(/*hard_exit_code=*/130);

  pftk::mc::Explorer explorer(config);
  const auto result = explorer.run(pftk::robust::ShutdownGuard::stop_flag());
  const auto& st = result.stats;

  std::cout << "explore: " << config.describe() << "\n"
            << "  states " << st.states << ", branches " << st.branches
            << " (terminal " << st.terminals << ", pruned " << st.pruned
            << ", truncated " << st.truncated << "), jobs " << result.jobs << "\n"
            << "  enumeration " << (result.complete ? "complete" : "INCOMPLETE")
            << (result.interrupted ? " (interrupted)" : "") << ", violations "
            << st.violations << "\n";

  int exit_code = 0;
  if (!result.violations.empty()) {
    const auto& violation = result.violations.front();
    pftk::mc::CounterexampleTrace trace;
    trace.config = config;
    trace.choices = violation.path;
    trace.check = violation.check;
    trace.message = violation.message;
    trace.digest = violation.digest;
    pftk::mc::save_trace_file(out_path, trace);
    std::cout << "  VIOLATION [" << violation.check << "]: " << violation.message
              << "\n  counterexample written to " << out_path
              << " (replay with: pftk explore --replay " << out_path << ")\n";
    exit_code = 1;
  } else if (result.interrupted || !result.complete) {
    exit_code = 3;
  }

  if (obs_opts.enabled()) {
    pftk::obs::MetricsRegistry registry;
    const auto met = pftk::obs::StandardMetrics::register_on(registry);
    registry.freeze(1);
    auto& shard = registry.shard(0);
    shard.add(met.mc_explored_states, static_cast<double>(st.states));
    shard.add(met.mc_pruned, static_cast<double>(st.pruned));
    shard.add(met.mc_violations, static_cast<double>(st.violations));
    pftk::obs::ObsBundle bundle;
    bundle.source = "explore";
    bundle.metrics = registry.snapshot();
    export_obs_outputs(obs_opts, bundle);
  }
  return exit_code;
}

int cmd_chaos(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string spec_path = argv[2];
  pftk::exp::campaign::ChaosOptions options;
  options.work_dir = "pftk-chaos";
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (arg == "--dir" && i + 1 < argc) {
      options.work_dir = argv[++i];
    } else if (arg == "--fsync-every" && i + 1 < argc) {
      options.fsync_every =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--failpoint" && i + 1 < argc) {
      options.failpoints.emplace_back(argv[++i]);
    } else {
      std::cerr << "unknown chaos option: " << arg << "\n";
      return usage();
    }
  }
  const auto spec = pftk::exp::campaign::CampaignSpec::parse_file(spec_path);
  const auto report = pftk::exp::campaign::run_chaos_matrix(spec, options);
  std::cout << pftk::exp::campaign::describe(report) << "\n";
  return report.all_ok() ? 0 : 1;
}

int cmd_bench(int argc, char** argv) {
  pftk::exp::MicroBenchConfig config;
  bool want_json = false;
  bool gate_obs = false;
  std::string json_path = "BENCH_micro.json";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      config = pftk::exp::MicroBenchConfig::smoke();
    } else if (arg == "--gate") {
      gate_obs = true;
    } else if (arg == "--json") {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else {
      std::cerr << "unknown bench option: " << arg << "\n";
      return usage();
    }
  }

  const auto report = pftk::exp::run_micro_bench(config);

  pftk::exp::TextTable t({"benchmark", "best", "unit", "per second"});
  for (const auto& r : report.results) {
    t.add_row({r.name, pftk::exp::fmt(r.value, 2), r.unit,
               pftk::exp::fmt(r.per_second, 0)});
  }
  std::cout << "micro-benchmarks, mode " << report.mode << ", best of "
            << report.repeats << " repeats\n\n";
  t.print(std::cout);
  std::cout << "\nbatched vs scalar speedup: approx "
            << pftk::exp::fmt(report.approx_batch_speedup, 2) << "x, full "
            << pftk::exp::fmt(report.full_batch_speedup, 2) << "x\n"
            << "batched max relative error " << report.batch_max_rel_err
            << " (tolerance " << report.batch_tolerance << "): "
            << (report.equivalence_ok ? "ok" : "FAIL") << "\n"
            << "event-loop obs overhead "
            << pftk::exp::fmt(report.obs_overhead_ratio, 3) << "x (tolerance "
            << pftk::exp::fmt(report.obs_overhead_tolerance, 2) << "x): "
            << (report.obs_overhead_ok() ? "ok" : (gate_obs ? "FAIL" : "high")) << "\n"
            << "disarmed failpoint overhead "
            << pftk::exp::fmt(report.failpoint_overhead_ratio, 3) << "x (tolerance "
            << pftk::exp::fmt(report.failpoint_overhead_tolerance, 2) << "x): "
            << (report.failpoint_overhead_ok() ? "ok" : (gate_obs ? "FAIL" : "high"))
            << "\n";

  if (want_json) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "error: cannot open " << json_path << " for writing\n";
      return 1;
    }
    pftk::exp::write_bench_json(os, report);
    std::cout << "json written to " << json_path << "\n";
  }
  if (!report.equivalence_ok) {
    return 1;
  }
  if (gate_obs && !report.obs_overhead_ok()) {
    std::cerr << "error: obs overhead gate failed ("
              << pftk::exp::fmt(report.obs_overhead_ratio, 3) << "x > "
              << pftk::exp::fmt(report.obs_overhead_tolerance, 2) << "x)\n";
    return 1;
  }
  if (gate_obs && !report.failpoint_overhead_ok()) {
    std::cerr << "error: failpoint overhead gate failed ("
              << pftk::exp::fmt(report.failpoint_overhead_ratio, 3) << "x > "
              << pftk::exp::fmt(report.failpoint_overhead_tolerance, 2) << "x)\n";
    return 1;
  }
  return 0;
}

int cmd_obs(int argc, char** argv) {
  if (argc < 4 || std::string(argv[2]) != "summarize") {
    return usage();
  }
  const std::string path = argv[3];
  bool want_json = false;
  std::string json_path;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else {
      std::cerr << "unknown obs option: " << arg << "\n";
      return usage();
    }
  }

  pftk::obs::ObsReadReport read_report;
  const auto bundle = pftk::obs::load_obs_file(path, &read_report);
  if (!read_report.clean()) {
    std::cerr << "warning: " << path << ": salvaged " << read_report.records_parsed
              << " of " << read_report.lines_total << " line(s), "
              << read_report.lines_dropped << " dropped (first error: "
              << read_report.first_error << ")\n";
  }

  const auto breakdown = pftk::obs::summarize_events(bundle.events);
  if (want_json) {
    if (json_path.empty()) {
      pftk::obs::write_breakdown_json(std::cout, breakdown, bundle.source,
                                      bundle.events_dropped);
    } else {
      std::ofstream os(json_path);
      if (!os) {
        std::cerr << "error: cannot open " << json_path << " for writing\n";
        return 1;
      }
      pftk::obs::write_breakdown_json(os, breakdown, bundle.source,
                                      bundle.events_dropped);
      std::cout << "json written to " << json_path << "\n";
    }
  } else {
    std::cout << pftk::obs::render_breakdown_text(breakdown, bundle.source,
                                                  bundle.events_dropped);
  }
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const auto events = pftk::trace::load_trace_file(argv[2]);
  const int threshold = argc > 3 ? std::atoi(argv[3]) : 3;

  const auto validation = pftk::trace::validate_trace(events);
  if (!validation.ok()) {
    std::cerr << "trace has " << validation.violations.size() << " violations; first: "
              << validation.violations.front().message << " (event "
              << validation.violations.front().event_index << ")\n";
    return 1;
  }
  const auto row = pftk::trace::summarize_trace(events, threshold);
  std::cout << "events " << events.size() << ", packets " << row.packets_sent
            << ", loss indications " << row.loss_indications << " (p = "
            << pftk::exp::fmt(row.observed_p, 4) << ")\n"
            << "TD " << row.td_events << "; timeout depths";
  for (std::size_t k = 0; k < row.timeouts_by_depth.size(); ++k) {
    std::cout << " T" << k << "=" << row.timeouts_by_depth[k];
  }
  std::cout << "\nRTT " << pftk::exp::fmt(row.avg_rtt, 3) << " s, T0 "
            << pftk::exp::fmt(row.avg_timeout, 3) << " s, RTT/window corr "
            << pftk::exp::fmt(row.rtt_window_correlation, 3) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global fault-injection flag: pulled out before dispatch so every
  // subcommand's persistence path can be chaos-tested. Disarmed (the
  // default), the failpoint checks are a single relaxed atomic load.
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--failpoints" && i + 1 < argc) {
        try {
          pftk::robust::FailpointRegistry::instance().arm_specs(argv[++i]);
        } catch (const std::exception& e) {
          std::cerr << "error: " << e.what() << "\n";
          return 2;
        }
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  if (argc < 2) {
    return usage();
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "model") {
      return cmd_model(argc, argv);
    }
    if (cmd == "latency") {
      return cmd_latency(argc, argv);
    }
    if (cmd == "provision") {
      return cmd_provision(argc, argv);
    }
    if (cmd == "list") {
      return cmd_list();
    }
    if (cmd == "simulate") {
      return cmd_simulate(argc, argv);
    }
    if (cmd == "analyze") {
      return cmd_analyze(argc, argv);
    }
    if (cmd == "faultsim") {
      return cmd_faultsim(argc, argv);
    }
    if (cmd == "campaign") {
      return cmd_campaign(argc, argv);
    }
    if (cmd == "explore") {
      return cmd_explore(argc, argv);
    }
    if (cmd == "chaos") {
      return cmd_chaos(argc, argv);
    }
    if (cmd == "bench") {
      return cmd_bench(argc, argv);
    }
    if (cmd == "obs") {
      return cmd_obs(argc, argv);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
