// pftk — command-line front end to the library.
//
//   pftk model <p> <rtt_s> <t0_s> <wm> [b]         closed-form predictions
//   pftk latency <packets> <p> <rtt_s> <t0_s> <wm> short-flow latency
//   pftk provision <rate_pps> <rtt_s> <t0_s> <wm>   inverse model: max loss
//                                                   rate / required window
//   pftk list                                      path-profile catalogue
//   pftk simulate <sender> <receiver> <secs> [seed] [trace-file]
//                                                  run + Table-II row
//   pftk analyze <trace-file> [dupack_threshold]   offline trace analysis
//   pftk faultsim <sender> <receiver> <secs> <schedule> [seed] [trace-file]
//                                                  run under injected faults
//   pftk campaign <spec-file> [--threads N] [--journal FILE] [--resume]
//                                                  supervised grid campaign
//   pftk bench [--smoke] [--json [FILE]]           hot-path micro-benchmarks
//
// The simulate/analyze pair mirrors the paper's tcpdump-then-postprocess
// workflow: `simulate ... trace.tsv` writes a capture that `analyze`
// (or any external tool) can consume later. `faultsim` layers a
// declarative impairment schedule (see sim/fault_injector.hpp, e.g.
// "blackout@120+5;loss@600+60:0.05") over the path's loss process and
// runs with a watchdog armed, so pathological schedules fail with a
// diagnostic instead of hanging. `campaign` runs a declarative
// profile x seed x scenario x model grid (see exp/campaign/) on a worker
// pool with per-run deadlines, retry-with-backoff on transient failures,
// and a resumable JSONL checkpoint journal; it exits nonzero with a
// failure-taxonomy summary when items were lost. `bench` times the
// hot paths (event-queue dispatch, scalar vs. batched model evaluation,
// trace parsing) and emits schema-stable BENCH_micro.json; it exits
// nonzero if the batched path drifts from the scalar path beyond 1e-12.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/markov_model.hpp"
#include "core/model_registry.hpp"
#include "core/inverse_model.hpp"
#include "core/short_flow_model.hpp"
#include "core/throughput_model.hpp"
#include "exp/campaign/campaign_runner.hpp"
#include "exp/hour_trace_experiment.hpp"
#include "exp/micro_bench.hpp"
#include "exp/table_format.hpp"
#include "sim/fault_injector.hpp"
#include "sim/sim_watchdog.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/trace_summary.hpp"
#include "trace/trace_validator.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  pftk model <p> <rtt_s> <t0_s> <wm> [b]\n"
               "  pftk latency <packets> <p> <rtt_s> <t0_s> <wm>\n"
               "  pftk provision <rate_pps> <rtt_s> <t0_s> <wm>\n"
               "  pftk list\n"
               "  pftk simulate <sender> <receiver> <seconds> [seed] [trace-file]\n"
               "  pftk analyze <trace-file> [dupack_threshold]\n"
               "  pftk faultsim <sender> <receiver> <seconds> <schedule> [seed] [trace-file]\n"
               "      schedule: kind@start[+duration][#count][:rate[:magnitude]] ';'-separated\n"
               "      kinds: blackout, loss, dup, reorder, delay  (e.g. blackout@120+5)\n"
               "  pftk campaign <spec-file> [--threads N] [--journal FILE] [--resume]\n"
               "      supervised grid campaign (see EXPERIMENTS.md for the spec and\n"
               "      journal formats); exits 1 with a taxonomy summary on partial loss\n"
               "  pftk bench [--smoke] [--json [FILE]]\n"
               "      hot-path micro-benchmarks; --json writes BENCH_micro.json (or\n"
               "      FILE); exits 1 if batched model evaluation drifts from scalar\n";
  return 2;
}

int cmd_model(int argc, char** argv) {
  if (argc < 6) {
    return usage();
  }
  pftk::model::ModelParams params;
  params.p = std::atof(argv[2]);
  params.rtt = std::atof(argv[3]);
  params.t0 = std::atof(argv[4]);
  params.wm = std::atof(argv[5]);
  params.b = argc > 6 ? std::atoi(argv[6]) : 2;
  params.validate();

  std::cout << params.describe() << "\n";
  for (const auto kind : pftk::model::all_model_kinds) {
    std::cout << "  " << pftk::model::model_name(kind) << ": "
              << pftk::model::evaluate_model(kind, params) << " pkts/s\n";
  }
  std::cout << "  throughput T(p): " << pftk::model::throughput_model_rate(params)
            << " pkts/s\n";
  if (params.p > 0.0) {
    std::cout << "  Markov (numerical): " << pftk::model::markov_model_send_rate(params)
              << " pkts/s\n";
  }
  return 0;
}

int cmd_latency(int argc, char** argv) {
  if (argc < 7) {
    return usage();
  }
  const auto d = static_cast<std::uint64_t>(std::atoll(argv[2]));
  pftk::model::ModelParams params;
  params.p = std::atof(argv[3]);
  params.rtt = std::atof(argv[4]);
  params.t0 = std::atof(argv[5]);
  params.wm = std::atof(argv[6]);
  const auto bd = pftk::model::short_flow_breakdown(d, params);
  std::cout << "transfer of " << d << " packets @ " << params.describe() << "\n"
            << "  slow start:    " << bd.slow_start_seconds << " s ("
            << bd.expected_slow_start_packets << " pkts)\n"
            << "  loss recovery: " << bd.loss_recovery_seconds << " s (P[loss] = "
            << bd.loss_probability << ")\n"
            << "  steady state:  " << bd.steady_state_seconds << " s\n"
            << "  total:         " << bd.total_seconds << " s\n";
  return 0;
}

int cmd_provision(int argc, char** argv) {
  if (argc < 6) {
    return usage();
  }
  const double target = std::atof(argv[2]);
  pftk::model::ModelParams params;
  params.rtt = std::atof(argv[3]);
  params.t0 = std::atof(argv[4]);
  params.wm = std::atof(argv[5]);
  params.p = 0.01;  // placeholder; each inversion ignores one field
  const double max_p = pftk::model::max_loss_for_rate(params, target);
  std::cout << "target " << target << " pkts/s @ RTT " << params.rtt << " s, T0 "
            << params.t0 << " s, Wm " << params.wm << ":\n"
            << "  max tolerable loss-indication rate: " << max_p
            << (max_p == 0.0 ? "  (unreachable: ceiling Wm/RTT is below target)" : "")
            << "\n";
  for (const double p : {0.001, 0.01, 0.05}) {
    pftk::model::ModelParams probe = params;
    probe.p = p;
    const double wm = pftk::model::required_window_for_rate(probe, target);
    std::cout << "  required window at p=" << p << ": " << wm << " packets\n";
  }
  return 0;
}

int cmd_list() {
  for (const auto& profile : pftk::exp::table2_profiles()) {
    std::cout << profile.label() << "\n";
  }
  std::cout << pftk::exp::modem_profile().label() << " (modem; use the fig11 bench)\n";
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 5) {
    return usage();
  }
  const auto profile = pftk::exp::profile_by_label(argv[2], argv[3]);
  const double duration = std::atof(argv[4]);
  const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1998;
  const std::string trace_path = argc > 6 ? argv[6] : "";

  pftk::sim::Connection conn(pftk::exp::make_connection_config(profile, seed));
  pftk::trace::TraceRecorder recorder;
  conn.set_observer(&recorder);
  const auto run = conn.run_for(duration);

  auto row = pftk::trace::summarize_trace(recorder.events(), profile.dupack_threshold());
  std::cout << profile.label() << ", " << duration << " s, seed " << seed << "\n"
            << "  packets sent " << row.packets_sent << ", loss indications "
            << row.loss_indications << " (p = " << pftk::exp::fmt(row.observed_p, 4)
            << "), TD " << row.td_events << "\n"
            << "  RTT " << pftk::exp::fmt(row.avg_rtt, 3) << " s, T0 "
            << pftk::exp::fmt(row.avg_timeout, 3) << " s, send rate "
            << pftk::exp::fmt(run.send_rate, 2) << " pkts/s\n";
  if (!trace_path.empty()) {
    pftk::trace::save_trace_file(trace_path, recorder.events());
    std::cout << "  trace written to " << trace_path << " (" << recorder.events().size()
              << " events)\n";
  }
  return 0;
}

int cmd_faultsim(int argc, char** argv) {
  if (argc < 6) {
    return usage();
  }
  const auto profile = pftk::exp::profile_by_label(argv[2], argv[3]);
  const double duration = std::atof(argv[4]);
  const auto schedule = pftk::sim::FaultSchedule::parse(argv[5]);
  const std::uint64_t seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 1998;
  const std::string trace_path = argc > 7 ? argv[7] : "";

  auto config = pftk::exp::make_connection_config(profile, seed);
  config.forward_faults = schedule;
  pftk::sim::Connection conn(config);
  conn.enable_watchdog();
  pftk::trace::TraceRecorder recorder;
  conn.set_observer(&recorder);

  std::cout << profile.label() << ", " << duration << " s, seed " << seed
            << "\n  schedule: " << schedule.describe() << "\n";
  try {
    const auto run = conn.run_for(duration);
    auto row =
        pftk::trace::summarize_trace(recorder.events(), profile.dupack_threshold());
    std::cout << "  packets sent " << row.packets_sent << ", loss indications "
              << row.loss_indications << " (p = " << pftk::exp::fmt(row.observed_p, 4)
              << "), send rate " << pftk::exp::fmt(run.send_rate, 2) << " pkts/s\n"
              << "  faults: " << run.forward_faults.total_dropped() << " dropped ("
              << run.forward_faults.dropped_blackout << " blackout, "
              << run.forward_faults.dropped_loss << " loss), "
              << run.forward_faults.duplicated << " duplicated, "
              << run.forward_faults.reordered << " reordered, "
              << run.forward_faults.delayed << " delayed, of "
              << run.forward_faults.offered << " offered\n";
  } catch (const pftk::sim::WatchdogError& e) {
    std::cerr << "watchdog tripped:\n" << e.snapshot().describe() << "\n";
    return 1;
  }
  if (!trace_path.empty()) {
    pftk::trace::save_trace_file(trace_path, recorder.events());
    std::cout << "  trace written to " << trace_path << " (" << recorder.events().size()
              << " events)\n";
  }
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string spec_path = argv[2];
  pftk::exp::campaign::CampaignRunnerOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (arg == "--journal" && i + 1 < argc) {
      options.journal_path = argv[++i];
    } else if (arg == "--resume") {
      options.resume = true;
    } else {
      std::cerr << "unknown campaign option: " << arg << "\n";
      return usage();
    }
  }

  const auto spec = pftk::exp::campaign::CampaignSpec::parse_file(spec_path);
  pftk::exp::campaign::CampaignRunner runner(spec, options);
  const auto result = runner.run();

  std::cout << "campaign: " << result.items.size() << " items ("
            << spec.profiles.size() << " profiles x " << spec.seeds.size()
            << " seeds x " << std::max<std::size_t>(1, spec.scenarios.size())
            << " scenarios x " << std::max<std::size_t>(1, spec.models.size())
            << " models), " << options.threads << " worker(s)";
  if (result.resumed > 0) {
    std::cout << ", " << result.resumed << " replayed from journal";
  }
  std::cout << "\n\n";

  pftk::exp::TextTable t(
      {"item", "status", "tries", "packets", "rate", "predicted", "p", "rtt"});
  for (const auto& item : result.items) {
    using pftk::exp::campaign::ItemStatus;
    const char* status = item.status == ItemStatus::kOk ? "ok"
                         : item.status == ItemStatus::kFailedTransient
                             ? "lost (transient)"
                             : "lost (permanent)";
    if (item.ok()) {
      t.add_row({item.item.key(), status, std::to_string(item.attempts),
                 pftk::exp::fmt_u(item.metrics.packets_sent),
                 pftk::exp::fmt(item.metrics.send_rate, 2),
                 pftk::exp::fmt(item.metrics.predicted, 0),
                 pftk::exp::fmt(item.metrics.p, 4),
                 pftk::exp::fmt(item.metrics.rtt, 3)});
    } else {
      t.add_row({item.item.key(), status, std::to_string(item.attempts)});
    }
  }
  t.print(std::cout);

  std::cout << "\n" << result.report.describe() << "\n";
  if (!result.all_ok()) {
    std::cout << result.taxonomy_summary() << "\n";
    return 1;
  }
  return 0;
}

int cmd_bench(int argc, char** argv) {
  pftk::exp::MicroBenchConfig config;
  bool want_json = false;
  std::string json_path = "BENCH_micro.json";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      config = pftk::exp::MicroBenchConfig::smoke();
    } else if (arg == "--json") {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        json_path = argv[++i];
      }
    } else {
      std::cerr << "unknown bench option: " << arg << "\n";
      return usage();
    }
  }

  const auto report = pftk::exp::run_micro_bench(config);

  pftk::exp::TextTable t({"benchmark", "best", "unit", "per second"});
  for (const auto& r : report.results) {
    t.add_row({r.name, pftk::exp::fmt(r.value, 2), r.unit,
               pftk::exp::fmt(r.per_second, 0)});
  }
  std::cout << "micro-benchmarks, mode " << report.mode << ", best of "
            << report.repeats << " repeats\n\n";
  t.print(std::cout);
  std::cout << "\nbatched vs scalar speedup: approx "
            << pftk::exp::fmt(report.approx_batch_speedup, 2) << "x, full "
            << pftk::exp::fmt(report.full_batch_speedup, 2) << "x\n"
            << "batched max relative error " << report.batch_max_rel_err
            << " (tolerance " << report.batch_tolerance << "): "
            << (report.equivalence_ok ? "ok" : "FAIL") << "\n";

  if (want_json) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "error: cannot open " << json_path << " for writing\n";
      return 1;
    }
    pftk::exp::write_bench_json(os, report);
    std::cout << "json written to " << json_path << "\n";
  }
  return report.equivalence_ok ? 0 : 1;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const auto events = pftk::trace::load_trace_file(argv[2]);
  const int threshold = argc > 3 ? std::atoi(argv[3]) : 3;

  const auto validation = pftk::trace::validate_trace(events);
  if (!validation.ok()) {
    std::cerr << "trace has " << validation.violations.size() << " violations; first: "
              << validation.violations.front().message << " (event "
              << validation.violations.front().event_index << ")\n";
    return 1;
  }
  const auto row = pftk::trace::summarize_trace(events, threshold);
  std::cout << "events " << events.size() << ", packets " << row.packets_sent
            << ", loss indications " << row.loss_indications << " (p = "
            << pftk::exp::fmt(row.observed_p, 4) << ")\n"
            << "TD " << row.td_events << "; timeout depths";
  for (std::size_t k = 0; k < row.timeouts_by_depth.size(); ++k) {
    std::cout << " T" << k << "=" << row.timeouts_by_depth[k];
  }
  std::cout << "\nRTT " << pftk::exp::fmt(row.avg_rtt, 3) << " s, T0 "
            << pftk::exp::fmt(row.avg_timeout, 3) << " s, RTT/window corr "
            << pftk::exp::fmt(row.rtt_window_correlation, 3) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "model") {
      return cmd_model(argc, argv);
    }
    if (cmd == "latency") {
      return cmd_latency(argc, argv);
    }
    if (cmd == "provision") {
      return cmd_provision(argc, argv);
    }
    if (cmd == "list") {
      return cmd_list();
    }
    if (cmd == "simulate") {
      return cmd_simulate(argc, argv);
    }
    if (cmd == "analyze") {
      return cmd_analyze(argc, argv);
    }
    if (cmd == "faultsim") {
      return cmd_faultsim(argc, argv);
    }
    if (cmd == "campaign") {
      return cmd_campaign(argc, argv);
    }
    if (cmd == "bench") {
      return cmd_bench(argc, argv);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
