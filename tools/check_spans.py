#!/usr/bin/env python3
"""Validate a pftk Chrome/Perfetto trace-event export's shape.

Usage: check_spans.py <trace.json> [min_events]

Checks the structural contract chrome://tracing and ui.perfetto.dev
rely on: a traceEvents list of complete-duration ("ph":"X") events with
numeric ts/dur and pid/tid, plus the pftk otherData header totals.
"""
import json
import sys

path = sys.argv[1]
min_events = int(sys.argv[2]) if len(sys.argv) > 2 else 1
with open(path, encoding="utf-8") as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list), "traceEvents must be a list"
assert len(events) >= min_events, f"expected >= {min_events} events, got {len(events)}"
for e in events:
    assert e["ph"] == "X", f"non-complete-duration event: {e}"
    assert e["cat"] == "pftk" and isinstance(e["name"], str) and e["name"]
    assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
    assert isinstance(e["dur"], (int, float)) and e["dur"] >= 0
    assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
other = doc["otherData"]
assert other["schema"] == "pftk-spans/1", other
assert other["spans"] == len(events), "header span count != events emitted"
assert other["threads"] >= len({e["tid"] for e in events})
print(f"ok: {len(events)} events, {other['threads']} threads, "
      f"{other['dropped']} dropped ({path})")
