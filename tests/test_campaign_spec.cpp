// CampaignSpec: grid expansion order is the determinism contract, and
// the spec-file parser must reject garbage with a line diagnostic.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/campaign/campaign_spec.hpp"

namespace pftk::exp::campaign {
namespace {

PathProfile quick_profile(const std::string& sender, const std::string& receiver) {
  PathProfile profile;
  profile.sender = sender;
  profile.receiver = receiver;
  profile.one_way_delay = 0.05;
  profile.loss_p = 0.02;
  profile.advertised_window = 16.0;
  return profile;
}

CampaignSpec two_by_two_spec() {
  CampaignSpec spec;
  spec.profiles = {quick_profile("a", "b"), quick_profile("c", "d")};
  spec.seeds = {1, 2};
  spec.scenarios = {{"clean", {}, {}},
                    {"blackout", sim::FaultSchedule::parse("blackout@1+2"), {}}};
  spec.models = {model::ModelKind::kFull, model::ModelKind::kTdOnly};
  return spec;
}

TEST(CampaignSpec, ExpansionIsProfileMajorAndIndexed) {
  const auto items = two_by_two_spec().expand();
  ASSERT_EQ(items.size(), 16u);  // 2 profiles x 2 seeds x 2 scenarios x 2 models
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].index, i);
  }
  // Innermost axis is the model, then scenario, then seed, then profile.
  EXPECT_EQ(items[0].key(), "a->b/s1/clean/full");
  EXPECT_EQ(items[1].key(), "a->b/s1/clean/td");
  EXPECT_EQ(items[2].key(), "a->b/s1/blackout/full");
  EXPECT_EQ(items[4].key(), "a->b/s2/clean/full");
  EXPECT_EQ(items[8].key(), "c->d/s1/clean/full");
  EXPECT_EQ(items[15].key(), "c->d/s2/blackout/td");
}

TEST(CampaignSpec, ExpansionIsReproducible) {
  const CampaignSpec spec = two_by_two_spec();
  const auto a = spec.expand();
  const auto b = spec.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key(), b[i].key());
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(CampaignSpec, EmptyScenarioAndModelAxesDefaultToOneCell) {
  CampaignSpec spec;
  spec.profiles = {quick_profile("a", "b")};
  spec.seeds = {7};
  const auto items = spec.expand();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].key(), "a->b/s7/clean/full");
  EXPECT_EQ(spec.item_count(), 1u);
}

TEST(CampaignSpec, ValidateRejectsEmptyGridAndBadKnobs) {
  CampaignSpec spec;
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // no profiles
  spec.profiles = {quick_profile("a", "b")};
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // no seeds
  spec.seeds = {1};
  EXPECT_NO_THROW(spec.validate());
  spec.duration = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.duration = 10.0;
  spec.retry.max_attempts = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(CampaignSpecParse, ParsesTheDocumentedFormat) {
  std::istringstream in(
      "# comment\n"
      "kind = short\n"
      "duration = 60\n"
      "profiles = manic->ganef, void -> ganef\n"
      "seeds = 10..12\n"
      "models = full, td\n"
      "scenario = clean | |\n"
      "scenario = dark | blackout@5+2 | loss@0+60:0.5\n"
      "deadline = 30\n"
      "max_events = 1000000\n"
      "retries = 4\n"
      "backoff_ms = 10\n"
      "backoff_cap_ms = 100\n");
  const CampaignSpec spec = CampaignSpec::parse(in);
  EXPECT_EQ(spec.kind, CampaignKind::kShortTrace);
  EXPECT_DOUBLE_EQ(spec.duration, 60.0);
  ASSERT_EQ(spec.profiles.size(), 2u);
  EXPECT_EQ(spec.profiles[1].sender, "void");
  ASSERT_EQ(spec.seeds.size(), 3u);
  EXPECT_EQ(spec.seeds[2], 12u);
  ASSERT_EQ(spec.models.size(), 2u);
  EXPECT_EQ(spec.models[1], model::ModelKind::kTdOnly);
  ASSERT_EQ(spec.scenarios.size(), 2u);
  EXPECT_EQ(spec.scenarios[1].name, "dark");
  EXPECT_FALSE(spec.scenarios[1].forward.empty());
  EXPECT_FALSE(spec.scenarios[1].reverse.empty());
  EXPECT_DOUBLE_EQ(spec.deadline_s, 30.0);
  EXPECT_EQ(spec.watchdog.max_events, 1000000u);
  EXPECT_EQ(spec.retry.max_attempts, 4);
  EXPECT_EQ(spec.retry.backoff_base.count(), 10);
  EXPECT_EQ(spec.retry.backoff_cap.count(), 100);
  EXPECT_EQ(spec.item_count(), 2u * 3u * 2u * 2u);
}

TEST(CampaignSpecParse, RejectsGarbageWithLineDiagnostics) {
  const auto expect_rejected = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW((void)CampaignSpec::parse(in), std::invalid_argument) << text;
  };
  expect_rejected("profiles = manic->ganef\nseeds = 1\nnot a line\n");
  expect_rejected("profiles = manic->ganef\nseeds = 1\nkind = weekly\n");
  expect_rejected("profiles = nosuch->host\nseeds = 1\n");
  expect_rejected("profiles = manic->ganef\nseeds = banana\n");
  expect_rejected("profiles = manic->ganef\nseeds = 5..2\n");
  expect_rejected("profiles = manic->ganef\nseeds = 1\nmodels = cubist\n");
  expect_rejected("profiles = manic->ganef\nseeds = 1\nscenario = | blackout@0+1 |\n");
  expect_rejected("profiles = manic->ganef\nseeds = 1\nwombat = 3\n");
}

TEST(CampaignSpecParse, MissingFileThrows) {
  EXPECT_THROW((void)CampaignSpec::parse_file("/nonexistent/campaign.spec"),
               std::invalid_argument);
}

TEST(CampaignSpec, ModelTokensRoundTrip) {
  for (const model::ModelKind kind : model::all_model_kinds) {
    EXPECT_EQ(model_from_token(model_token(kind)), kind);
  }
  EXPECT_THROW((void)model_from_token("markov"), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::exp::campaign
