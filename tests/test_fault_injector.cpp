// The fault-injection layer: schedule grammar, per-packet verdicts, and
// the determinism contract (same seed + same schedule => byte-identical
// traces; an empty or inactive schedule perturbs nothing).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/connection.hpp"
#include "sim/fault_injector.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_recorder.hpp"

namespace pftk::sim {
namespace {

TEST(FaultSchedule, ParsesSingleBlackout) {
  const FaultSchedule s = FaultSchedule::parse("blackout@120+5");
  ASSERT_EQ(s.faults.size(), 1u);
  EXPECT_EQ(s.faults[0].kind, FaultKind::kBlackout);
  EXPECT_DOUBLE_EQ(s.faults[0].start, 120.0);
  EXPECT_DOUBLE_EQ(s.faults[0].duration, 5.0);
  EXPECT_EQ(s.faults[0].count, 0u);
}

TEST(FaultSchedule, ParsesPacketCountedBlackout) {
  const FaultSchedule s = FaultSchedule::parse("blackout@30#20");
  ASSERT_EQ(s.faults.size(), 1u);
  EXPECT_DOUBLE_EQ(s.faults[0].start, 30.0);
  EXPECT_DOUBLE_EQ(s.faults[0].duration, 0.0);
  EXPECT_EQ(s.faults[0].count, 20u);
}

TEST(FaultSchedule, ParsesEveryKindWithParameters) {
  const FaultSchedule s = FaultSchedule::parse(
      "blackout@100+5;loss@200+60:0.5;dup@0+3600:0.01:0.02;"
      "reorder@0+3600:0.02:0.15;delay@500+10:0.4");
  ASSERT_EQ(s.faults.size(), 5u);
  EXPECT_EQ(s.faults[1].kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(s.faults[1].rate, 0.5);
  EXPECT_EQ(s.faults[2].kind, FaultKind::kDuplicate);
  EXPECT_DOUBLE_EQ(s.faults[2].rate, 0.01);
  EXPECT_DOUBLE_EQ(s.faults[2].magnitude, 0.02);
  EXPECT_EQ(s.faults[3].kind, FaultKind::kReorder);
  EXPECT_DOUBLE_EQ(s.faults[3].magnitude, 0.15);
  // A delay spike's single parameter is the magnitude, not a rate.
  EXPECT_EQ(s.faults[4].kind, FaultKind::kDelaySpike);
  EXPECT_DOUBLE_EQ(s.faults[4].magnitude, 0.4);
}

TEST(FaultSchedule, DescribeRoundTrips) {
  const std::string text =
      "blackout@100+5;loss@200+60:0.5;dup@0+3600:0.01:0.02;"
      "reorder@0+3600:0.02:0.15;delay@500+10:0.4;blackout@30#20";
  const FaultSchedule s = FaultSchedule::parse(text);
  const FaultSchedule reparsed = FaultSchedule::parse(s.describe());
  EXPECT_EQ(reparsed.describe(), s.describe());
  ASSERT_EQ(reparsed.faults.size(), s.faults.size());
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    EXPECT_EQ(reparsed.faults[i].kind, s.faults[i].kind) << i;
    EXPECT_DOUBLE_EQ(reparsed.faults[i].start, s.faults[i].start) << i;
    EXPECT_DOUBLE_EQ(reparsed.faults[i].duration, s.faults[i].duration) << i;
    EXPECT_EQ(reparsed.faults[i].count, s.faults[i].count) << i;
    EXPECT_DOUBLE_EQ(reparsed.faults[i].rate, s.faults[i].rate) << i;
    EXPECT_DOUBLE_EQ(reparsed.faults[i].magnitude, s.faults[i].magnitude) << i;
  }
}

TEST(FaultSchedule, RejectsMalformedInput) {
  EXPECT_THROW((void)FaultSchedule::parse("blackout120+5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("eclipse@120+5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("blackout@abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("blackout@120"), std::invalid_argument)
      << "a window or a packet count is required";
  EXPECT_THROW((void)FaultSchedule::parse("loss@0+10:1.5"), std::invalid_argument)
      << "rates above 1 are invalid";
  EXPECT_THROW((void)FaultSchedule::parse("loss@0+10#5:0.5"), std::invalid_argument)
      << "packet counts apply to blackouts only";
  EXPECT_THROW((void)FaultSchedule::parse("delay@0+10"), std::invalid_argument)
      << "a delay spike needs a magnitude";
  EXPECT_THROW((void)FaultSchedule::parse("blackout@0#2.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSchedule::parse("blackout@-5+10"), std::invalid_argument);
}

TEST(FaultSchedule, EmptyTextParsesToEmptySchedule) {
  EXPECT_TRUE(FaultSchedule::parse("").empty());
}

TEST(FaultInjector, WindowActivation) {
  FaultInjector inj(FaultSchedule::parse("loss@10+5:1"), Rng(1));
  EXPECT_FALSE(inj.on_packet(9.9).drop);
  EXPECT_TRUE(inj.on_packet(10.0).drop);
  EXPECT_TRUE(inj.on_packet(14.9).drop);
  EXPECT_FALSE(inj.on_packet(15.0).drop);
  EXPECT_EQ(inj.stats().offered, 4u);
  EXPECT_EQ(inj.stats().dropped_loss, 2u);
}

TEST(FaultInjector, PacketCountedBlackoutDropsExactlyN) {
  FaultInjector inj(FaultSchedule::parse("blackout@1#3"), Rng(1));
  EXPECT_FALSE(inj.on_packet(0.5).drop);  // before activation
  int dropped = 0;
  for (int i = 0; i < 10; ++i) {
    dropped += inj.on_packet(2.0 + 0.1 * i).drop ? 1 : 0;
  }
  EXPECT_EQ(dropped, 3);
  EXPECT_EQ(inj.stats().dropped_blackout, 3u);
  EXPECT_EQ(inj.stats().total_dropped(), 3u);
}

TEST(FaultInjector, DuplicationVerdict) {
  FaultInjector inj(FaultSchedule::parse("dup@0+10:1:0.02"), Rng(1));
  const FaultVerdict v = inj.on_packet(1.0);
  EXPECT_FALSE(v.drop);
  EXPECT_EQ(v.extra_copies, 1u);
  EXPECT_DOUBLE_EQ(v.duplicate_lag, 0.02);
  EXPECT_EQ(inj.stats().duplicated, 1u);
}

TEST(FaultInjector, ReorderVerdictExemptsFifo) {
  FaultInjector inj(FaultSchedule::parse("reorder@0+10:1:0.05"), Rng(1));
  const FaultVerdict v = inj.on_packet(1.0);
  EXPECT_FALSE(v.drop);
  EXPECT_DOUBLE_EQ(v.extra_delay, 0.05);
  EXPECT_TRUE(v.exempt_fifo);
  EXPECT_EQ(inj.stats().reordered, 1u);
}

TEST(FaultInjector, DelaySpikeHitsEveryPacketInWindow) {
  FaultInjector inj(FaultSchedule::parse("delay@0+10:0.4"), Rng(1));
  for (int i = 0; i < 5; ++i) {
    const FaultVerdict v = inj.on_packet(1.0 + i);
    EXPECT_DOUBLE_EQ(v.extra_delay, 0.4);
    EXPECT_FALSE(v.exempt_fifo);
  }
  EXPECT_EQ(inj.stats().delayed, 5u);
}

TEST(FaultInjector, ResetRestoresBudgetsAndStats) {
  FaultInjector inj(FaultSchedule::parse("blackout@0#2"), Rng(1));
  (void)inj.on_packet(1.0);
  (void)inj.on_packet(1.1);
  EXPECT_FALSE(inj.on_packet(1.2).drop);  // budget exhausted
  inj.reset();
  EXPECT_EQ(inj.stats().offered, 0u);
  EXPECT_TRUE(inj.on_packet(1.3).drop);  // budget restored
}

ConnectionConfig faulted_config(const std::string& schedule) {
  ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.forward_link.propagation_delay = 0.05;
  cfg.reverse_link.propagation_delay = 0.05;
  cfg.forward_loss = BernoulliLossSpec{0.01};
  cfg.forward_faults = FaultSchedule::parse(schedule);
  cfg.seed = 42;
  return cfg;
}

std::string traced_run(const ConnectionConfig& cfg, double duration) {
  Connection conn(cfg);
  trace::TraceRecorder recorder;
  conn.set_observer(&recorder);
  (void)conn.run_for(duration);
  std::ostringstream os;
  trace::write_trace(os, recorder.events());
  return os.str();
}

TEST(FaultInjector, SameSeedAndScheduleYieldByteIdenticalTraces) {
  const ConnectionConfig cfg =
      faulted_config("blackout@20+2;loss@40+20:0.3;dup@0+120:0.02:0.01");
  EXPECT_EQ(traced_run(cfg, 120.0), traced_run(cfg, 120.0));
}

TEST(FaultInjector, InactiveScheduleDoesNotPerturbTheRun) {
  // A schedule entirely after the run's end consumes no randomness, so
  // the trace matches the no-fault-layer run byte for byte.
  ConnectionConfig clean = faulted_config("");
  clean.forward_faults = FaultSchedule{};
  const ConnectionConfig dormant = faulted_config("blackout@5000+10");
  EXPECT_EQ(traced_run(clean, 60.0), traced_run(dormant, 60.0));
}

TEST(FaultInjector, BlackoutForcesTimeouts) {
  // A 5-s outage outlives the RTO, so the sender must time out.
  const ConnectionConfig cfg = faulted_config("blackout@30+5");
  Connection conn(cfg);
  const ConnectionSummary s = conn.run_for(120.0);
  EXPECT_GT(s.timeouts, 0u);
  EXPECT_GT(s.forward_faults.dropped_blackout, 0u);
  EXPECT_EQ(s.forward_faults.offered, s.packets_sent);
}

TEST(FaultInjector, AckPathLossIsCountedSeparately) {
  ConnectionConfig cfg = faulted_config("");
  cfg.forward_faults = FaultSchedule{};
  cfg.reverse_faults = FaultSchedule::parse("loss@0+300:0.3");
  Connection conn(cfg);
  const ConnectionSummary s = conn.run_for(300.0);
  EXPECT_GT(s.reverse_faults.dropped_loss, 0u);
  EXPECT_EQ(s.forward_faults.offered, 0u);
  // Cumulative ACKs keep the flow moving despite heavy ACK loss.
  EXPECT_GT(s.packets_delivered, 1000u);
}

}  // namespace
}  // namespace pftk::sim
