// The summarize engine's contract: the TD/TO taxonomy recovered from an
// event stream follows the paper's Section II rules (a TD indication is
// one fast retransmit; a TO sequence is a run of rto_fire events whose
// backoff level restarts at 1; depth buckets mirror Table 2's T1..T6+),
// it agrees exactly with the simulator's internal counters on a real
// run, and the --json rendering is byte-stable against a golden file.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/path_profile.hpp"
#include "obs/conn_event_trace.hpp"
#include "obs/export.hpp"
#include "obs/summarize.hpp"
#include "sim/connection.hpp"

namespace pftk::obs {
namespace {

ConnEvent event(double t, ConnEventKind kind, double value = 0.0) {
  return ConnEvent{t, kind, value, 0.0};
}

TEST(ObsSummarize, EmptyStreamYieldsAllZeros) {
  const LossBreakdown bd = summarize_events({});
  EXPECT_EQ(bd.td, 0u);
  EXPECT_EQ(bd.to_sequences, 0u);
  EXPECT_EQ(bd.timeout_events, 0u);
  EXPECT_EQ(bd.loss_indications(), 0u);
  EXPECT_EQ(bd.max_backoff_level, 0);
  EXPECT_DOUBLE_EQ(bd.td_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(bd.to_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(bd.duration, 0.0);
  for (const auto n : bd.timeouts_by_depth) {
    EXPECT_EQ(n, 0u);
  }
}

TEST(ObsSummarize, SplitsTdFromToAndTracksSequenceDepth) {
  // FR, FR, then a two-deep timeout sequence (levels 1,2), recovery into
  // congestion avoidance, then a fresh one-deep sequence: td=2,
  // to_sequences=2, timeout_events=3, depth T1=1 T2=1, max backoff 2.
  const std::vector<ConnEvent> events = {
      event(1.0, ConnEventKind::kFastRetransmit),
      event(2.0, ConnEventKind::kFastRetransmit),
      event(3.0, ConnEventKind::kRtoFire, 1.0),
      event(4.0, ConnEventKind::kRtoFire, 2.0),
      event(5.0, ConnEventKind::kCongAvoidEnter),
      event(6.0, ConnEventKind::kRtoFire, 1.0),
  };
  const LossBreakdown bd = summarize_events(events);
  EXPECT_EQ(bd.td, 2u);
  EXPECT_EQ(bd.to_sequences, 2u);
  EXPECT_EQ(bd.timeout_events, 3u);
  EXPECT_EQ(bd.loss_indications(), 4u);
  EXPECT_EQ(bd.max_backoff_level, 2);
  EXPECT_EQ(bd.timeouts_by_depth[0], 1u);  // the trailing level-1 sequence
  EXPECT_EQ(bd.timeouts_by_depth[1], 1u);  // the level-1,2 sequence
  EXPECT_EQ(bd.timeouts_by_depth[2], 0u);
  EXPECT_EQ(bd.cong_avoid_entries, 1u);
  EXPECT_DOUBLE_EQ(bd.td_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(bd.to_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(bd.duration, 5.0);
}

TEST(ObsSummarize, BackToBackSequencesSplitOnLevelReset) {
  // Two timeout sequences with nothing between them: the level dropping
  // back to 1 is what separates them (the sender reset its backoff).
  const std::vector<ConnEvent> events = {
      event(1.0, ConnEventKind::kRtoFire, 1.0),
      event(2.0, ConnEventKind::kRtoFire, 2.0),
      event(3.0, ConnEventKind::kRtoFire, 3.0),
      event(4.0, ConnEventKind::kRtoFire, 1.0),
      event(5.0, ConnEventKind::kRtoFire, 2.0),
  };
  const LossBreakdown bd = summarize_events(events);
  EXPECT_EQ(bd.to_sequences, 2u);
  EXPECT_EQ(bd.timeout_events, 5u);
  EXPECT_EQ(bd.max_backoff_level, 3);
  EXPECT_EQ(bd.timeouts_by_depth[1], 1u);  // the open tail sequence (depth 2)
  EXPECT_EQ(bd.timeouts_by_depth[2], 1u);  // the first sequence (depth 3)
}

TEST(ObsSummarize, DeepSequencesAggregateIntoTheSixPlusBucket) {
  std::vector<ConnEvent> events;
  for (int level = 1; level <= 9; ++level) {
    events.push_back(event(static_cast<double>(level), ConnEventKind::kRtoFire,
                           static_cast<double>(level)));
  }
  const LossBreakdown bd = summarize_events(events);
  EXPECT_EQ(bd.to_sequences, 1u);
  EXPECT_EQ(bd.max_backoff_level, 9);
  EXPECT_EQ(bd.timeouts_by_depth[5], 1u);  // Table 2's "T6+" column
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(bd.timeouts_by_depth[k], 0u);
  }
}

TEST(ObsSummarize, TdEndsAnOpenTimeoutSequence) {
  const std::vector<ConnEvent> events = {
      event(1.0, ConnEventKind::kRtoFire, 1.0),
      event(2.0, ConnEventKind::kFastRetransmit),
      event(3.0, ConnEventKind::kRtoFire, 1.0),
  };
  const LossBreakdown bd = summarize_events(events);
  EXPECT_EQ(bd.td, 1u);
  EXPECT_EQ(bd.to_sequences, 2u);
  EXPECT_EQ(bd.timeouts_by_depth[0], 2u);
}

TEST(ObsSummarize, CountsAdjacentRegimeSignals) {
  const std::vector<ConnEvent> events = {
      event(0.0, ConnEventKind::kSlowStartEnter),
      event(1.0, ConnEventKind::kRwndClamp),
      event(2.0, ConnEventKind::kFaultDrop),
      event(3.0, ConnEventKind::kWatchdogTrip),
      event(4.0, ConnEventKind::kCwndUpdate),  // ignored by the taxonomy
  };
  const LossBreakdown bd = summarize_events(events);
  EXPECT_EQ(bd.slow_start_entries, 1u);
  EXPECT_EQ(bd.rwnd_clamps, 1u);
  EXPECT_EQ(bd.fault_drops, 1u);
  EXPECT_EQ(bd.watchdog_trips, 1u);
  EXPECT_EQ(bd.loss_indications(), 0u);
}

TEST(ObsSummarize, AgreesExactlyWithTheSendersOwnCounters) {
  // The cross-check the module exists for: recomputing the TD/TO split
  // from the event stream must land on the simulator's internal
  // counters, not merely near them.
  sim::ConnectionConfig config;
  config.sender.advertised_window = 16.0;
  config.forward_link.propagation_delay = 0.05;
  config.reverse_link.propagation_delay = 0.05;
  config.forward_loss = sim::BernoulliLossSpec{0.04};
  config.seed = 23;
  sim::Connection conn(config);
  ConnEventTrace trace;
  conn.attach_observability(&trace);
  (void)conn.run_for(150.0);

  const auto events = trace.events();
  ASSERT_EQ(trace.dropped(), 0u) << "ring too small for an exact cross-check";
  const LossBreakdown bd = summarize_events(events);
  const auto& stats = conn.sender().stats();
  EXPECT_GT(bd.loss_indications(), 0u);
  EXPECT_EQ(bd.td, stats.fast_retransmits);
  EXPECT_EQ(bd.timeout_events, stats.timeouts);
  EXPECT_LE(bd.to_sequences, bd.timeout_events);
}

TEST(ObsSummarize, TextRenderingMentionsTheSplitAndDrops) {
  LossBreakdown bd;
  bd.td = 3;
  bd.to_sequences = 1;
  bd.timeout_events = 2;
  bd.max_backoff_level = 2;
  bd.timeouts_by_depth[1] = 1;
  bd.duration = 30.0;
  const std::string text = render_breakdown_text(bd, "simulate", 5);
  EXPECT_NE(text.find("loss-indication breakdown (simulate"), std::string::npos);
  EXPECT_NE(text.find("TD 3 (75.0%)"), std::string::npos);
  EXPECT_NE(text.find("TO sequences 1 (25.0%)"), std::string::npos);
  EXPECT_NE(text.find("T2=1"), std::string::npos);
  EXPECT_NE(text.find("T6+=0"), std::string::npos);
  EXPECT_NE(text.find("5 events were overwritten"), std::string::npos);

  const std::string clean = render_breakdown_text(bd, "simulate", 0);
  EXPECT_EQ(clean.find("overwritten"), std::string::npos);
}

TEST(ObsSummarize, GoldenJsonForFixedSeedFig8ShortTrace) {
  // Replicates `pftk simulate manic alps 30 42 --trace-events E` followed
  // by `pftk obs summarize E --json` in-process and compares the JSON
  // byte-for-byte against the checked-in golden. A diff means either the
  // simulation, the event emission, the JSONL round trip, or the
  // breakdown formatting changed — all of which must be deliberate.
  const auto profile = exp::profile_by_label("manic", "alps");
  sim::Connection conn(exp::make_connection_config(profile, 42));
  ConnEventTrace trace;
  conn.attach_observability(&trace);
  (void)conn.run_for(30.0);

  // Same bundle shape the CLI writes for --trace-events: events only.
  ObsBundle bundle;
  bundle.source = "simulate";
  bundle.events = trace.events();
  bundle.events_dropped = trace.dropped();
  std::stringstream jsonl;
  write_obs_jsonl(jsonl, bundle);
  ObsReadReport report;
  const ObsBundle back = read_obs_jsonl(jsonl, &report);
  ASSERT_TRUE(report.clean());

  std::ostringstream actual;
  write_breakdown_json(actual, summarize_events(back.events), back.source,
                       back.events_dropped);

  const std::string golden_path =
      std::string(PFTK_TEST_DATA_DIR) + "/obs_summarize_fig8.golden.json";
  std::ifstream is(golden_path);
  ASSERT_TRUE(is) << "missing golden file " << golden_path;
  std::ostringstream expected;
  expected << is.rdbuf();
  EXPECT_EQ(actual.str(), expected.str());
}

MetricValue counter(const std::string& name, double value) {
  MetricValue m;
  m.name = name;
  m.kind = MetricKind::kCounter;
  m.value = value;
  return m;
}

TEST(ObsMergeBundles, ShardMergeSemanticsAcrossSnapshotFiles) {
  // The multi-file `pftk obs summarize a.jsonl b.jsonl` path: worker
  // snapshots fold together exactly like shards of one process —
  // counters sum, gauges max, histogram buckets sum, event streams
  // append, drop counts sum.
  ObsBundle a;
  a.source = "serve";
  a.metrics.metrics.push_back(counter("pftk_serve_served_total", 100.0));
  MetricValue gauge;
  gauge.name = "pftk_serve_queue_depth";
  gauge.kind = MetricKind::kGauge;
  gauge.value = 3.0;
  a.metrics.metrics.push_back(gauge);
  MetricValue hist;
  hist.name = "pftk_serve_latency_seconds";
  hist.kind = MetricKind::kHistogram;
  hist.bounds = {1.0};
  hist.buckets = {2, 1};
  hist.count = 3;
  hist.sum = 2.5;
  a.metrics.metrics.push_back(hist);
  a.events.push_back(ConnEvent{1.0, ConnEventKind::kFastRetransmit, 0.0, 0.0});
  a.events_dropped = 1;

  ObsBundle b;
  b.source = "serve";
  b.metrics.metrics.push_back(counter("pftk_serve_served_total", 50.0));
  b.metrics.metrics.push_back(counter("pftk_serve_shed_total", 7.0));
  gauge.value = 5.0;
  b.metrics.metrics.push_back(gauge);
  hist.buckets = {0, 4};
  hist.count = 4;
  hist.sum = 8.0;
  b.metrics.metrics.push_back(hist);
  b.events.push_back(ConnEvent{2.0, ConnEventKind::kRtoFire, 1.0, 0.0});
  b.events_dropped = 2;

  ObsBundle merged;
  merge_obs_bundles(merged, a);
  merge_obs_bundles(merged, b);

  EXPECT_EQ(merged.source, "serve");  // identical sources do not repeat
  const MetricValue* served = merged.metrics.find("pftk_serve_served_total");
  ASSERT_NE(served, nullptr);
  EXPECT_DOUBLE_EQ(served->value, 150.0);
  const MetricValue* shed = merged.metrics.find("pftk_serve_shed_total");
  ASSERT_NE(shed, nullptr);  // metrics only one worker saw survive
  EXPECT_DOUBLE_EQ(shed->value, 7.0);
  const MetricValue* depth = merged.metrics.find("pftk_serve_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 5.0);  // gauges merge by max, not sum
  const MetricValue* lat = merged.metrics.find("pftk_serve_latency_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 7u);
  EXPECT_EQ(lat->buckets, (std::vector<std::uint64_t>{2, 5}));
  EXPECT_DOUBLE_EQ(lat->sum, 10.5);
  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_EQ(merged.events_dropped, 3u);

  // A differing source labels the merged bundle as such, and the merged
  // result survives a JSONL round trip intact.
  ObsBundle sup;
  sup.source = "supervisor";
  sup.metrics.metrics.push_back(counter("pftk_sup_restarts_total", 2.0));
  merge_obs_bundles(merged, sup);
  EXPECT_EQ(merged.source, "serve+supervisor");

  std::stringstream jsonl;
  write_obs_jsonl(jsonl, merged);
  ObsReadReport report;
  const ObsBundle back = read_obs_jsonl(jsonl, &report);
  ASSERT_TRUE(report.clean());
  EXPECT_EQ(back.source, "serve+supervisor");
  const MetricValue* back_served =
      back.metrics.find("pftk_serve_served_total");
  ASSERT_NE(back_served, nullptr);
  EXPECT_DOUBLE_EQ(back_served->value, 150.0);
  EXPECT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.events_dropped, 3u);
}

TEST(ObsMergeBundles, MismatchedKindsForSharedNameAreRejected) {
  ObsBundle a;
  a.metrics.metrics.push_back(counter("pftk_serve_served_total", 1.0));
  ObsBundle b;
  MetricValue g;
  g.name = "pftk_serve_served_total";
  g.kind = MetricKind::kGauge;
  g.value = 1.0;
  b.metrics.metrics.push_back(g);
  ObsBundle merged;
  merge_obs_bundles(merged, a);
  EXPECT_THROW(merge_obs_bundles(merged, b), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::obs
