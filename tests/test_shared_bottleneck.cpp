// Multi-flow dumbbell tests: congestion-driven losses, fair sharing, and
// the model's per-flow predictions from measured per-flow parameters.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/model_registry.hpp"
#include "sim/shared_bottleneck.hpp"
#include "stats/fairness.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/trace_summary.hpp"

namespace pftk::sim {
namespace {

SharedBottleneckConfig dumbbell(std::size_t flows, double rate_pps = 120.0,
                                std::size_t queue_len = 20) {
  SharedBottleneckConfig cfg;
  cfg.rate_pps = rate_pps;
  cfg.queue = DropTailSpec{queue_len};
  cfg.bottleneck_delay = 0.02;
  cfg.seed = 33;
  for (std::size_t i = 0; i < flows; ++i) {
    FlowEndpointConfig f;
    f.sender.advertised_window = 64.0;
    f.sender.min_rto = 1.0;
    f.access_delay = 0.01;
    f.exit_delay = 0.02;
    f.return_delay = 0.04;
    cfg.flows.push_back(f);
  }
  return cfg;
}

TEST(SharedBottleneck, SingleFlowSaturatesTheLink) {
  SharedBottleneck net(dumbbell(1));
  const auto summaries = net.run_for(300.0);
  ASSERT_EQ(summaries.size(), 1u);
  // Goodput within a few percent of the bottleneck rate.
  EXPECT_GT(summaries[0].throughput, 0.90 * 120.0);
  EXPECT_LE(summaries[0].throughput, 120.5);
}

TEST(SharedBottleneck, CongestionCreatesLossesWithoutInjectedNoise) {
  SharedBottleneck net(dumbbell(2));
  net.run_for(300.0);
  EXPECT_GT(net.bottleneck_stats().dropped_queue, 0u);
  EXPECT_EQ(net.bottleneck_stats().dropped_loss, 0u);  // no stochastic loss
}

TEST(SharedBottleneck, TwoIdenticalFlowsShareFairly) {
  SharedBottleneck net(dumbbell(2));
  const auto summaries = net.run_for(600.0);
  std::vector<double> rates;
  double total = 0.0;
  for (const FlowSummary& s : summaries) {
    rates.push_back(s.throughput);
    total += s.throughput;
  }
  EXPECT_GT(total, 0.9 * 120.0);  // the pair still saturates the link
  EXPECT_GT(stats::jain_fairness_index(rates), 0.85);
}

TEST(SharedBottleneck, FourFlowsStillFairAndSaturating) {
  SharedBottleneck net(dumbbell(4, 160.0, 30));
  const auto summaries = net.run_for(600.0);
  std::vector<double> rates;
  double total = 0.0;
  for (const FlowSummary& s : summaries) {
    rates.push_back(s.throughput);
    total += s.throughput;
  }
  EXPECT_GT(total, 0.9 * 160.0);
  EXPECT_GT(stats::jain_fairness_index(rates), 0.8);
}

TEST(SharedBottleneck, ShorterRttFlowGetsMore) {
  // Classic TCP RTT-unfairness: rate ~ 1/RTT for synchronized flows.
  SharedBottleneckConfig cfg = dumbbell(2);
  cfg.flows[1].return_delay = 0.25;  // flow 1 has a much longer RTT
  SharedBottleneck net(cfg);
  const auto summaries = net.run_for(600.0);
  EXPECT_GT(summaries[0].throughput, 1.3 * summaries[1].throughput);
}

TEST(SharedBottleneck, PerFlowModelPredictionFromMeasuredParameters) {
  // The paper's use case: measure a flow's p/RTT/T0 on a shared link and
  // predict its send rate with the full model.
  SharedBottleneckConfig cfg = dumbbell(2);
  SharedBottleneck net(cfg);
  trace::TraceRecorder recorder;
  net.set_observer(0, &recorder);
  const auto summaries = net.run_for(900.0);

  const auto row = trace::summarize_trace(recorder.events(), 3);
  ASSERT_GT(row.loss_indications, 10u);
  model::ModelParams params;
  params.p = row.observed_p;
  params.rtt = row.avg_rtt;
  params.t0 = row.avg_timeout > 0.0 ? row.avg_timeout : 1.0;
  params.b = 2;
  params.wm = 64.0;
  const double predicted = model::evaluate_model(model::ModelKind::kFull, params);
  const double measured = summaries[0].send_rate;
  EXPECT_GT(predicted / measured, 1.0 / 3.0);
  EXPECT_LT(predicted / measured, 3.0);
}

TEST(SharedBottleneck, RejectsBadConfigs) {
  SharedBottleneckConfig cfg = dumbbell(1);
  cfg.rate_pps = 0.0;
  EXPECT_THROW(SharedBottleneck{cfg}, std::invalid_argument);
  cfg = dumbbell(1);
  cfg.flows.clear();
  EXPECT_THROW(SharedBottleneck{cfg}, std::invalid_argument);
  cfg = dumbbell(1);
  cfg.flows[0].access_delay = -1.0;
  EXPECT_THROW(SharedBottleneck{cfg}, std::invalid_argument);
}

TEST(SharedBottleneck, ObserverIndexChecked) {
  SharedBottleneck net(dumbbell(2));
  EXPECT_THROW(net.set_observer(5, nullptr), std::out_of_range);
}

TEST(JainFairness, KnownValues) {
  const std::vector<double> equal{10.0, 10.0, 10.0};
  EXPECT_NEAR(stats::jain_fairness_index(equal), 1.0, 1e-12);
  const std::vector<double> hog{30.0, 0.0, 0.0};
  EXPECT_NEAR(stats::jain_fairness_index(hog), 1.0 / 3.0, 1e-12);
  const std::vector<double> empty;
  EXPECT_EQ(stats::jain_fairness_index(empty), 0.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_EQ(stats::jain_fairness_index(zeros), 0.0);
  const std::vector<double> bad{-1.0};
  EXPECT_THROW((void)stats::jain_fairness_index(bad), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::sim
