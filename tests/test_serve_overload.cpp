// Overload behavior under a fixed-seed replay load: bounded queues shed
// with BUSY instead of buffering, deadlines shed stale work, and the
// accounting identities hold to the unit on both sides of the socket —
// client sent == ok + busy + deadline + errors + lost, server
// requests == served + shed + deadline_missed + internal — with exact
// cross-checks between them.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "serve/load_client.hpp"
#include "serve/server.hpp"

namespace pftk::serve {
namespace {

std::string test_socket(const std::string& name) {
  return "/tmp/pftk_tovl_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

void expect_cross_checks(const LoadReport& client, const ServeSummary& server) {
  EXPECT_TRUE(client.accounting_ok())
      << "client identity violated: " << client.describe();
  EXPECT_TRUE(server.accounting_ok())
      << "server identity violated: " << server.describe();
  // With zero lost responses the two ledgers must agree column by column.
  if (client.lost == 0) {
    EXPECT_EQ(client.sent, server.requests);
    EXPECT_EQ(client.ok, server.served);
    EXPECT_EQ(client.busy, server.shed);
    EXPECT_EQ(client.deadline, server.deadline_missed);
  }
}

TEST(ServeOverload, TwiceSustainableLoadShedsWithBusyAndExactAccounting) {
  ServeConfig config;
  config.socket_path = test_socket("shed");
  config.shards = 1;
  config.queue_depth = 8;
  config.slow_us = 200;  // sustainable ~5k req/s; the load offers far more
  Server server(config);
  server.start();

  LoadConfig load;
  load.socket_path = config.socket_path;
  load.requests = 3000;
  load.connections = 4;
  load.pipeline = 64;
  load.seed = 1998;
  const LoadReport report = run_load(load);

  server.request_stop();
  const ServeSummary summary = server.wait();

  EXPECT_EQ(report.sent, 3000u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.protocol_errors, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  // Overload must shed — at this offered load a depth-8 queue cannot
  // absorb everything — and sheds must be BUSY answers, never drops.
  EXPECT_GT(report.busy, 0u);
  expect_cross_checks(report, summary);

  // Bounded everything: the queue never grew past its watermark, and
  // the p99 of *accepted* requests stays inside the committed bound
  // (depth x service time plus generous scheduling slack) — an
  // unbounded queue would push this into seconds.
  EXPECT_LE(summary.queue_peak, config.queue_depth);
  EXPECT_GT(summary.served, 0u);
  EXPECT_LT(summary.latency_p99_s, 0.5);
}

TEST(ServeOverload, DeadlinesShedStaleWorkAtDequeue) {
  ServeConfig config;
  config.socket_path = test_socket("deadline");
  config.shards = 1;
  config.queue_depth = 32;
  config.slow_us = 500;  // full queue => ~16ms wait, far past the budget
  Server server(config);
  server.start();

  LoadConfig load;
  load.socket_path = config.socket_path;
  load.requests = 1500;
  load.connections = 2;
  load.pipeline = 64;
  load.deadline_ms = 2.0;
  const LoadReport report = run_load(load);

  server.request_stop();
  const ServeSummary summary = server.wait();

  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.protocol_errors, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  // Stale work is shed with DEADLINE_EXCEEDED instead of finished late.
  EXPECT_GT(report.deadline, 0u);
  expect_cross_checks(report, summary);
}

TEST(ServeOverload, DefaultDeadlineAppliesToRequestsWithoutOne) {
  ServeConfig config;
  config.socket_path = test_socket("defdl");
  config.shards = 1;
  config.queue_depth = 32;
  config.slow_us = 500;
  config.default_deadline_ms = 2.0;  // server-side policy, client sends none
  Server server(config);
  server.start();

  LoadConfig load;
  load.socket_path = config.socket_path;
  load.requests = 1000;
  load.connections = 2;
  load.pipeline = 64;
  const LoadReport report = run_load(load);

  server.request_stop();
  const ServeSummary summary = server.wait();
  EXPECT_GT(report.deadline, 0u);
  expect_cross_checks(report, summary);
}

TEST(ServeOverload, SustainableLoadServesEverythingWithBatching) {
  ServeConfig config;
  config.socket_path = test_socket("sustain");
  config.shards = 2;
  config.queue_depth = 256;  // pipeline never reaches the watermark
  Server server(config);
  server.start();

  LoadConfig load;
  load.socket_path = config.socket_path;
  load.requests = 4000;
  load.connections = 3;
  load.pipeline = 32;
  load.param_sets = 2;  // few keys => long front-contiguous MODEL runs
  const LoadReport report = run_load(load);

  server.request_stop();
  const ServeSummary summary = server.wait();

  EXPECT_EQ(report.ok, 4000u);
  EXPECT_EQ(report.busy, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  expect_cross_checks(report, summary);
  // The ROADMAP item-5 batching engaged: same-key runs were drained into
  // PreparedModel::evaluate batches.
  EXPECT_GT(summary.batches, 0u);
  EXPECT_GT(summary.batched_requests, summary.batches);
}

TEST(ServeOverload, InverseMixVerifiesUnderLoad) {
  ServeConfig config;
  config.socket_path = test_socket("mix");
  config.shards = 2;
  config.queue_depth = 128;
  Server server(config);
  server.start();

  LoadConfig load;
  load.socket_path = config.socket_path;
  load.requests = 2000;
  load.connections = 2;
  load.pipeline = 16;
  load.inverse_every = 5;
  const LoadReport report = run_load(load);

  server.request_stop();
  const ServeSummary summary = server.wait();
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_EQ(report.protocol_errors, 0u);
  expect_cross_checks(report, summary);
}

}  // namespace
}  // namespace pftk::serve
