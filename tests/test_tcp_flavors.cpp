// Recovery-flavor behaviour: Reno vs NewReno vs Tahoe, driven with
// hand-crafted ACK streams and with full lossy-path simulations.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/connection.hpp"
#include "sim/tcp_reno_sender.hpp"

namespace pftk::sim {
namespace {

struct Fixture {
  EventQueue queue;
  std::vector<Segment> sent;
  TcpRenoSenderConfig config;

  Fixture() {
    config.advertised_window = 16.0;
    config.initial_cwnd = 8.0;
    config.initial_ssthresh = 8.0;
    config.min_rto = 1.0;
    config.timer_tick = 0.0;
  }

  std::unique_ptr<TcpRenoSender> start() {
    auto s = std::make_unique<TcpRenoSender>(queue, config);
    s->set_send_segment([this](const Segment& seg) { sent.push_back(seg); });
    s->start();
    return s;
  }

  static void ack(TcpRenoSender& s, EventQueue& q, SeqNo cum) {
    Ack a;
    a.cumulative = cum;
    s.on_ack(a, q.now());
  }
};

TEST(TahoeFlavor, DupAckLossCollapsesToSlowStart) {
  Fixture f;
  f.config.recovery = RecoveryStyle::kTahoe;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  Fixture::ack(s, f.queue, 4);
  for (int i = 0; i < 3; ++i) {
    Fixture::ack(s, f.queue, 4);
  }
  EXPECT_EQ(s.stats().fast_retransmits, 1u);
  EXPECT_FALSE(s.in_fast_recovery());  // Tahoe never inflates
  EXPECT_EQ(s.cwnd(), 1.0);            // slow start from one packet
  EXPECT_NEAR(s.ssthresh(), 4.0, 1e-9);
  // Go-back-N: the retransmission stream restarts at snd_una.
  EXPECT_EQ(f.sent.back().seq, 4u);
  EXPECT_TRUE(f.sent.back().retransmission);
}

TEST(TahoeFlavor, SlowStartsAfterTheCollapse) {
  Fixture f;
  f.config.recovery = RecoveryStyle::kTahoe;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  Fixture::ack(s, f.queue, 4);
  for (int i = 0; i < 3; ++i) {
    Fixture::ack(s, f.queue, 4);
  }
  Fixture::ack(s, f.queue, 5);  // rexmit repaired one hole
  EXPECT_EQ(s.cwnd(), 2.0);     // slow-start growth, not ssthresh jump
}

TEST(NewRenoFlavor, PartialAckKeepsRecoveryOpen) {
  Fixture f;
  f.config.recovery = RecoveryStyle::kNewReno;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  Fixture::ack(s, f.queue, 4);  // flight now 4..11
  const std::size_t before = f.sent.size();
  for (int i = 0; i < 3; ++i) {
    Fixture::ack(s, f.queue, 4);
  }
  ASSERT_TRUE(s.in_fast_recovery());
  // Partial ACK: cumulative advances but not past the recovery point.
  Fixture::ack(s, f.queue, 6);
  EXPECT_TRUE(s.in_fast_recovery());
  // The partial ACK triggered a retransmission of the next hole (seq 6).
  bool resent_6 = false;
  for (std::size_t i = before; i < f.sent.size(); ++i) {
    if (f.sent[i].seq == 6 && f.sent[i].retransmission) {
      resent_6 = true;
    }
  }
  EXPECT_TRUE(resent_6);
}

TEST(NewRenoFlavor, FullAckEndsRecovery) {
  Fixture f;
  f.config.recovery = RecoveryStyle::kNewReno;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  Fixture::ack(s, f.queue, 4);
  for (int i = 0; i < 3; ++i) {
    Fixture::ack(s, f.queue, 4);
  }
  ASSERT_TRUE(s.in_fast_recovery());
  const double ssthresh = s.ssthresh();
  // Ack everything sent so far: past the recovery point.
  Fixture::ack(s, f.queue, s.next_seq());
  EXPECT_FALSE(s.in_fast_recovery());
  EXPECT_DOUBLE_EQ(s.cwnd(), ssthresh);
}

TEST(RenoFlavor, AnyNewAckEndsRecovery) {
  Fixture f;  // default kReno
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  Fixture::ack(s, f.queue, 4);
  for (int i = 0; i < 3; ++i) {
    Fixture::ack(s, f.queue, 4);
  }
  ASSERT_TRUE(s.in_fast_recovery());
  Fixture::ack(s, f.queue, 6);  // partial by NewReno standards
  EXPECT_FALSE(s.in_fast_recovery());
}

ConnectionConfig lossy_path(RecoveryStyle style, std::uint64_t seed) {
  ConnectionConfig cfg;
  cfg.sender.advertised_window = 24.0;
  cfg.sender.recovery = style;
  cfg.sender.min_rto = 1.0;
  cfg.forward_link.propagation_delay = 0.08;
  cfg.reverse_link.propagation_delay = 0.08;
  // Short episodes: several losses per window, the case that separates
  // the three flavors (Fall & Floyd's comparison scenario).
  cfg.forward_loss = MixedBurstLossSpec{0.004, 0.0, 0.05, 0.05};
  cfg.seed = seed;
  return cfg;
}

TEST(FlavorComparison, MultiLossWindowsRankNewRenoTahoeReno) {
  double rates[3] = {0, 0, 0};
  std::uint64_t timeouts[3] = {0, 0, 0};
  const RecoveryStyle styles[3] = {RecoveryStyle::kTahoe, RecoveryStyle::kReno,
                                   RecoveryStyle::kNewReno};
  for (int i = 0; i < 3; ++i) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Connection conn(lossy_path(styles[i], seed));
      const ConnectionSummary s = conn.run_for(600.0);
      rates[i] += s.send_rate / 3.0;
      timeouts[i] += s.timeouts;
    }
  }
  // Fall & Floyd's ranking for windows with several losses: NewReno
  // repairs hole-by-hole without timeouts; Tahoe restarts immediately
  // (wasteful but prompt); classic Reno's recovery stalls after the first
  // hole and waits out an RTO, making it the slowest of the three.
  EXPECT_GT(rates[2], rates[1] * 0.99) << "NewReno >= Reno";
  EXPECT_GT(rates[0], rates[1] * 0.99) << "Tahoe >= Reno under burst loss";
  EXPECT_LT(timeouts[2], timeouts[1] + 1) << "NewReno times out no more than Reno";
}

TEST(FiniteTransfer, CompletesAndReportsTime) {
  Fixture f;
  f.config.total_packets = 6;
  f.config.initial_cwnd = 1.0;
  f.config.initial_ssthresh = 64.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  EXPECT_EQ(f.sent.size(), 1u);  // window 1, transfer of 6
  f.queue.run_until(0.1);
  Fixture::ack(s, f.queue, 1);
  Fixture::ack(s, f.queue, 3);
  Fixture::ack(s, f.queue, 6);
  EXPECT_TRUE(s.complete());
  EXPECT_GT(s.completion_time(), 0.0);
  EXPECT_EQ(s.stats().new_segments, 6u);
}

TEST(FiniteTransfer, NeverSendsBeyondTheTransfer) {
  Fixture f;
  f.config.total_packets = 4;
  f.config.initial_cwnd = 16.0;
  f.config.initial_ssthresh = 16.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  EXPECT_EQ(f.sent.size(), 4u);  // window would allow 16
  EXPECT_EQ(s.next_seq(), 4u);
}

TEST(FiniteTransfer, EndToEndOverLossyPath) {
  ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.sender.total_packets = 500;
  cfg.sender.min_rto = 1.0;
  cfg.forward_link.propagation_delay = 0.05;
  cfg.reverse_link.propagation_delay = 0.05;
  cfg.forward_loss = BernoulliLossSpec{0.02};
  cfg.seed = 9;
  Connection conn(cfg);
  conn.run_for(600.0);
  EXPECT_TRUE(conn.sender().complete());
  EXPECT_EQ(conn.receiver().next_expected(), 500u);
  EXPECT_GT(conn.sender().completion_time(), 0.0);
  EXPECT_LT(conn.sender().completion_time(), 600.0);
}

}  // namespace
}  // namespace pftk::sim
