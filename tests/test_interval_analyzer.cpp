#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "trace/interval_analyzer.hpp"

namespace pftk::trace {
namespace {

TraceEvent send_event(double t, sim::SeqNo seq, bool rexmit) {
  TraceEvent e;
  e.t = t;
  e.type = TraceEventType::kSegmentSent;
  e.seq = seq;
  e.retransmission = rexmit;
  return e;
}

TraceEvent ack_event(double t, sim::SeqNo cum) {
  TraceEvent e;
  e.t = t;
  e.type = TraceEventType::kAckReceived;
  e.seq = cum;
  return e;
}

TEST(IntervalAnalyzer, SplitsDurationIntoIntervals) {
  const std::vector<TraceEvent> ev;
  const auto obs = analyze_intervals(ev, 1000.0, 100.0);
  ASSERT_EQ(obs.size(), 10u);
  EXPECT_DOUBLE_EQ(obs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(obs[9].start, 900.0);
  EXPECT_DOUBLE_EQ(obs[9].length, 100.0);
}

TEST(IntervalAnalyzer, PartialFinalInterval) {
  const std::vector<TraceEvent> ev;
  const auto obs = analyze_intervals(ev, 250.0, 100.0);
  ASSERT_EQ(obs.size(), 3u);
  EXPECT_DOUBLE_EQ(obs[2].length, 50.0);
}

TEST(IntervalAnalyzer, PacketsCountedPerInterval) {
  std::vector<TraceEvent> ev;
  for (int i = 0; i < 5; ++i) {
    ev.push_back(send_event(10.0 + i, static_cast<sim::SeqNo>(i), false));
  }
  for (int i = 0; i < 3; ++i) {
    ev.push_back(send_event(110.0 + i, static_cast<sim::SeqNo>(5 + i), false));
  }
  const auto obs = analyze_intervals(ev, 300.0, 100.0);
  EXPECT_EQ(obs[0].packets_sent, 5u);
  EXPECT_EQ(obs[1].packets_sent, 3u);
  EXPECT_EQ(obs[2].packets_sent, 0u);
}

TEST(IntervalAnalyzer, CategoryNoLossAndTd) {
  std::vector<TraceEvent> ev;
  // Interval 0: clean transfer.
  ev.push_back(send_event(1.0, 0, false));
  ev.push_back(ack_event(1.2, 1));
  // Interval 1: a TD event (3 dup acks then retransmission).
  for (sim::SeqNo s = 1; s < 9; ++s) {
    ev.push_back(send_event(100.5, s, false));
  }
  ev.push_back(ack_event(101.0, 5));
  ev.push_back(ack_event(101.1, 5));
  ev.push_back(ack_event(101.2, 5));
  ev.push_back(ack_event(101.3, 5));
  ev.push_back(send_event(101.4, 5, true));
  const auto obs = analyze_intervals(ev, 300.0, 100.0);
  EXPECT_EQ(obs[0].category, IntervalCategory::kNoLoss);
  EXPECT_EQ(obs[1].category, IntervalCategory::kTd);
  EXPECT_EQ(obs[1].loss_indications, 1u);
}

TEST(IntervalAnalyzer, CategoryEscalatesWithTimeoutDepth) {
  std::vector<TraceEvent> ev;
  // Interval 0: single timeout (depth 1) -> T0.
  ev.push_back(send_event(0.0, 0, false));
  ev.push_back(send_event(3.0, 0, true));
  ev.push_back(ack_event(3.1, 1));
  // Interval 1: double timeout (depth 2) -> T1.
  ev.push_back(send_event(100.0, 1, false));
  ev.push_back(send_event(103.0, 1, true));
  ev.push_back(send_event(109.0, 1, true));
  ev.push_back(ack_event(109.1, 2));
  // Interval 2: depth 4 -> T2+.
  ev.push_back(send_event(200.0, 2, false));
  ev.push_back(send_event(203.0, 2, true));
  ev.push_back(send_event(209.0, 2, true));
  ev.push_back(send_event(221.0, 2, true));
  ev.push_back(send_event(245.0, 2, true));
  const auto obs = analyze_intervals(ev, 300.0, 100.0);
  EXPECT_EQ(obs[0].category, IntervalCategory::kT0);
  EXPECT_EQ(obs[1].category, IntervalCategory::kT1);
  EXPECT_EQ(obs[2].category, IntervalCategory::kT2Plus);
}

TEST(IntervalAnalyzer, ObservedPIsIndicationsOverPackets) {
  std::vector<TraceEvent> ev;
  for (int i = 0; i < 99; ++i) {
    ev.push_back(send_event(0.1 * i, static_cast<sim::SeqNo>(i), false));
  }
  ev.push_back(send_event(50.0, 0, true));  // one timeout indication
  const auto obs = analyze_intervals(ev, 100.0, 100.0);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].packets_sent, 100u);
  EXPECT_EQ(obs[0].loss_indications, 1u);
  EXPECT_NEAR(obs[0].observed_p, 0.01, 1e-12);
}

TEST(IntervalAnalyzer, IndicationBinnedByFirstRetransmission) {
  // A timeout sequence straddling a boundary belongs to the interval of
  // its first retransmission.
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(90.0, 0, false));
  ev.push_back(send_event(95.0, 0, true));   // starts in interval 0
  ev.push_back(send_event(105.0, 0, true));  // continues in interval 1
  const auto obs = analyze_intervals(ev, 200.0, 100.0);
  EXPECT_EQ(obs[0].loss_indications, 1u);
  EXPECT_EQ(obs[1].loss_indications, 0u);
  EXPECT_EQ(obs[0].max_timeout_depth, 2);
}

TEST(IntervalAnalyzer, RejectsBadArguments) {
  const std::vector<TraceEvent> ev;
  EXPECT_THROW(analyze_intervals(ev, 100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(analyze_intervals(ev, 0.0, 100.0), std::invalid_argument);
}

TEST(IntervalCategoryName, AllNamed) {
  EXPECT_EQ(interval_category_name(IntervalCategory::kNoLoss), "none");
  EXPECT_EQ(interval_category_name(IntervalCategory::kTd), "TD");
  EXPECT_EQ(interval_category_name(IntervalCategory::kT0), "T0");
  EXPECT_EQ(interval_category_name(IntervalCategory::kT1), "T1");
  EXPECT_EQ(interval_category_name(IntervalCategory::kT2Plus), "T2+");
}

}  // namespace
}  // namespace pftk::trace
