#include <gtest/gtest.h>

#include <stdexcept>

#include "core/tcp_model_params.hpp"

namespace pftk::model {
namespace {

TEST(ModelParams, DefaultsAreValid) {
  ModelParams p;
  EXPECT_TRUE(p.valid());
  EXPECT_NO_THROW(p.validate());
}

TEST(ModelParams, RejectsBadLossProbability) {
  ModelParams p;
  p.p = -0.1;
  EXPECT_FALSE(p.valid());
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.p = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.p = 0.0;  // p == 0 is allowed (window-limited regime)
  EXPECT_NO_THROW(p.validate());
}

TEST(ModelParams, RejectsNonPositiveTimes) {
  ModelParams p;
  p.rtt = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.rtt = 0.1;
  p.t0 = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ModelParams, RejectsBadAckFactorAndWindow) {
  ModelParams p;
  p.b = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.b = 1;
  p.wm = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ModelParams, RejectsNonFinite) {
  ModelParams p;
  p.p = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(p.valid());
  p.p = 0.01;
  p.rtt = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(p.valid());
}

TEST(ModelParams, DescribeMentionsFields) {
  ModelParams p;
  p.p = 0.02;
  const std::string text = p.describe();
  EXPECT_NE(text.find("p=0.02"), std::string::npos);
  EXPECT_NE(text.find("RTT="), std::string::npos);
  EXPECT_NE(text.find("Wm="), std::string::npos);
}

TEST(ModelParams, DescribeUnlimitedWindow) {
  ModelParams p;
  p.wm = ModelParams::unlimited_window;
  EXPECT_NE(p.describe().find("Wm=unlimited"), std::string::npos);
}

}  // namespace
}  // namespace pftk::model
