#include <gtest/gtest.h>

#include <stdexcept>

#include "core/tcp_model_params.hpp"

namespace pftk::model {
namespace {

TEST(ModelParams, DefaultsAreValid) {
  ModelParams p;
  EXPECT_TRUE(p.valid());
  EXPECT_NO_THROW(p.validate());
}

TEST(ModelParams, RejectsBadLossProbability) {
  ModelParams p;
  p.p = -0.1;
  EXPECT_FALSE(p.valid());
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.p = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.p = 0.0;  // p == 0 is allowed (window-limited regime)
  EXPECT_NO_THROW(p.validate());
}

TEST(ModelParams, RejectsNonPositiveTimes) {
  ModelParams p;
  p.rtt = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.rtt = 0.1;
  p.t0 = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ModelParams, RejectsBadAckFactorAndWindow) {
  ModelParams p;
  p.b = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.b = 1;
  p.wm = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// The rejection is *typed*: every validate() failure is a ParamError
// (an invalid_argument subtype), which is what the CLI maps to exit 2
// and the serve protocol maps to BADREQ — one validation authority.
TEST(ModelParams, ValidateThrowsTheTypedParamError) {
  ModelParams p;
  p.b = -2;
  EXPECT_THROW(p.validate(), ParamError);
  p.b = 0;
  EXPECT_THROW(p.validate(), ParamError);
  p.b = 1;
  p.t0 = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(p.validate(), ParamError);
  p.t0 = 0.4;
  p.rtt = std::numeric_limits<double>::infinity();
  EXPECT_THROW(p.validate(), ParamError);
  p.rtt = 0.1;
  EXPECT_NO_THROW(p.validate());
  // ParamError stays catchable as the untyped base for old call sites.
  p.p = -1.0;
  try {
    p.validate();
    FAIL() << "negative p passed validate()";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(dynamic_cast<const ParamError*>(&e), nullptr);
  }
}

TEST(ModelParams, RejectsNonFinite) {
  ModelParams p;
  p.p = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(p.valid());
  p.p = 0.01;
  p.rtt = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(p.valid());
}

// A NaN silently fails every range comparison, so validate() must call
// out non-finite fields explicitly rather than mislabel them as range
// errors (or let them sail through into the formulas).
TEST(ModelParams, ValidateNamesEachNonFiniteField) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  struct Case {
    double ModelParams::* field;
    const char* name;
  };
  const Case cases[] = {{&ModelParams::p, "p"},
                        {&ModelParams::rtt, "rtt"},
                        {&ModelParams::t0, "t0"},
                        {&ModelParams::wm, "wm"}};
  for (const Case& c : cases) {
    for (const double bad : {nan, inf, -inf}) {
      ModelParams params;
      params.*(c.field) = bad;
      try {
        params.validate();
        FAIL() << c.name << " = non-finite passed validate()";
      } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(c.name), std::string::npos) << what;
        EXPECT_NE(what.find("finite"), std::string::npos) << what;
      }
    }
  }
}

TEST(ModelParams, NegativeZeroAndDenormalsAreFinite) {
  ModelParams p;
  p.p = std::numeric_limits<double>::denorm_min();
  EXPECT_NO_THROW(p.validate());
  p.p = -0.0;  // counts as zero, i.e. the window-limited regime
  EXPECT_NO_THROW(p.validate());
}

TEST(ModelParams, DescribeMentionsFields) {
  ModelParams p;
  p.p = 0.02;
  const std::string text = p.describe();
  EXPECT_NE(text.find("p=0.02"), std::string::npos);
  EXPECT_NE(text.find("RTT="), std::string::npos);
  EXPECT_NE(text.find("Wm="), std::string::npos);
}

TEST(ModelParams, DescribeUnlimitedWindow) {
  ModelParams p;
  p.wm = ModelParams::unlimited_window;
  EXPECT_NE(p.describe().find("Wm=unlimited"), std::string::npos);
}

}  // namespace
}  // namespace pftk::model
