// Corruption-matrix parity tests for the mmap/chunk-parallel trace fast
// path (trace_reader_fast.*) against the istream reference reader, plus
// regression tests for the three silent-parse bugs fixed alongside it:
//   1. trailing garbage / merged records were accepted as valid events;
//   2. bytes_dropped miscounted CRLF (-1) and torn tails (+1);
//   3. an unterminated-but-parseable final line went unflagged.
// Every matrix case asserts identical events (bit-exact doubles) and an
// identical TraceReadReport, at one chunk and at many forced chunks, so
// the accounting is provably invariant to thread count.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "robust/failpoint.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_reader_fast.hpp"
#include "trace/trace_scan.hpp"

namespace pftk::trace {
namespace {

constexpr const char* kGood1 = "S\t0.100000000\t1\t0\t1\t2.000000000\n";
constexpr const char* kGood2 = "A\t0.200000000\t1\t0\n";
constexpr const char* kGood3 = "T\t0.300000000\t2\t1\t1.500000000\n";
constexpr const char* kGood4 = "F\t0.400000000\t3\n";
constexpr const char* kGood5 = "R\t0.500000000\t0.210000000\t8\n";

std::string good_block() {
  return std::string("# header\n") + kGood1 + kGood2 + kGood3 + kGood4 + kGood5;
}

struct Parsed {
  std::vector<TraceEvent> events;
  TraceReadReport report;
};

Parsed reference_lenient(const std::string& content) {
  std::istringstream is(content);
  Parsed p;
  p.events = read_trace_lenient(is, &p.report);
  return p;
}

Parsed fast_lenient(const std::string& content, const FastReaderOptions& opts) {
  Parsed p;
  p.events = read_trace_buffer(content, &p.report, opts);
  return p;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_events_identical(const std::vector<TraceEvent>& a,
                             const std::vector<TraceEvent>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << label << " event " << i;
    EXPECT_EQ(bits(a[i].t), bits(b[i].t)) << label << " event " << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << label << " event " << i;
    EXPECT_EQ(a[i].retransmission, b[i].retransmission) << label << " event " << i;
    EXPECT_EQ(a[i].duplicate, b[i].duplicate) << label << " event " << i;
    EXPECT_EQ(a[i].consecutive, b[i].consecutive) << label << " event " << i;
    EXPECT_EQ(bits(a[i].value), bits(b[i].value)) << label << " event " << i;
    EXPECT_EQ(a[i].in_flight, b[i].in_flight) << label << " event " << i;
    EXPECT_EQ(bits(a[i].cwnd), bits(b[i].cwnd)) << label << " event " << i;
  }
}

void expect_reports_identical(const TraceReadReport& a, const TraceReadReport& b,
                              const std::string& label) {
  EXPECT_EQ(a.lines_total, b.lines_total) << label;
  EXPECT_EQ(a.events_parsed, b.events_parsed) << label;
  EXPECT_EQ(a.comment_lines, b.comment_lines) << label;
  EXPECT_EQ(a.lines_dropped, b.lines_dropped) << label;
  EXPECT_EQ(a.bytes_dropped, b.bytes_dropped) << label;
  EXPECT_EQ(a.first_error_line, b.first_error_line) << label;
  EXPECT_EQ(a.first_error, b.first_error) << label;
  EXPECT_EQ(a.truncated, b.truncated) << label;
  EXPECT_EQ(a.suspect_final_event, b.suspect_final_event) << label;
}

/// Both readers, lenient and strict, over one input: events and every
/// report field must match at 1 chunk and at many forced tiny chunks.
void expect_full_parity(const std::string& content, const std::string& label) {
  const Parsed ref = reference_lenient(content);
  const FastReaderOptions variants[] = {
      {.threads = 1, .min_chunk_bytes = 1u << 20},
      {.threads = 4, .min_chunk_bytes = 1},
      {.threads = 7, .min_chunk_bytes = 1},
  };
  for (const auto& opts : variants) {
    const std::string tag =
        label + " [j" + std::to_string(opts.threads) + "]";
    const Parsed fast = fast_lenient(content, opts);
    expect_events_identical(ref.events, fast.events, tag);
    expect_reports_identical(ref.report, fast.report, tag);
  }

  // Strict parity: same outcome, and on failure the same line/message.
  std::string ref_error;
  bool ref_threw = false;
  {
    std::istringstream is(content);
    try {
      (void)read_trace(is);
    } catch (const std::invalid_argument& e) {
      ref_threw = true;
      ref_error = e.what();
    }
  }
  for (const auto& opts : variants) {
    std::string fast_error;
    bool fast_threw = false;
    try {
      (void)read_trace_buffer_strict(content, opts);
    } catch (const std::invalid_argument& e) {
      fast_threw = true;
      fast_error = e.what();
    }
    EXPECT_EQ(ref_threw, fast_threw) << label;
    EXPECT_EQ(ref_error, fast_error) << label;
  }
}

// ---------------------------------------------------------------------------
// The corruption matrix.

TEST(TraceFastParity, CorruptionMatrix) {
  const std::string g = good_block();
  std::string nul_record = "S\t0.5\t0\t0\t1\t1.0";
  nul_record.insert(3, 1, '\0');
  const struct {
    const char* name;
    std::string content;
  } cases[] = {
      {"clean", g},
      {"empty input", ""},
      {"only comments", "# a\n# b\n"},
      {"unterminated comment", "# a\n# tail with no newline"},
      {"blank lines", "\n\n" + g + "\n\n"},
      {"trailing garbage", g + "F\t1.0\t5\tgarbage\n" + g},
      {"merged records", g + "S\t0.6\t4\t0\t1\t2.0\tS\t0.7\t5\t0\t1\t2.0\n"},
      {"merged F records", g + "F\t1.0\t5\tF\t1.1\t6\n"},
      {"extra numeric field", g + "A\t0.8\t2\t0\t7\n"},
      {"crlf clean", "# dos\r\nS\t0.5\t0\t0\t1\t1.0\r\n"},
      {"crlf dropped line", "junk\r\n" + g},
      {"crlf torn tail", g + "S\t0.9\t9\r"},
      {"embedded NUL", g + nul_record + "\n" + g},
      {"NUL inside comment", std::string("# co\0mment\n", 11) + g},
      {"whitespace-only line", g + " \t \n" + g},
      {"leading spaces valid", "  S\t0.5\t0\t0\t1\t1.0\n"},
      {"space then hash", " # not a comment\n" + g},
      {"unterminated parseable final", g + "A\t0.6\t1\t0"},
      {"unterminated bad final", g + "S\t99.0\t12"},
      {"negative seq wraps", g + "A\t0.5\t-3\t0\n"},
      {"u64 overflow", g + "A\t0.5\t9999999999999999999999999\t0\n"},
      {"int overflow flag", g + "A\t0.5\t1\t99999999999\n"},
      {"plus-signed time", "S\t+0.5\t0\t0\t1\t1.0\n"},
      {"inf duration", g + "R\t0.5\tinf\t3\n"},
      {"nan time", g + "S\tnan\t0\t0\t1\t1.0\n"},
      {"double overflow", g + "S\t1e999\t0\t0\t1\t1.0\n"},
      {"incomplete exponent", g + "S\t5e\t0\t0\t1\t1.0\n"},
      {"valid exponent", "R\t1.5e-2\t0.21\t8\n"},
      {"hex float", "S\t0x10\t0\t0\t1\t1.0\n"},
      {"hex float with p exponent", "S\t0x1.8p1\t0\t0\t1\t1.0\n"},
      {"bare 0x", "S\t0x\t0\t0\t1\t1.0\n"},
      {"trailing dot", "S\t5.\t0\t0\t1\t1.0\n"},
      {"leading dot", "S\t.5\t0\t0\t1\t1.0\n"},
      {"double dot", "S\t5.5.5\t0\t0\t1\t1.0\n"},
      {"timeout depth range", g + "T\t0.5\t0\t99\t1.0\n"},
      {"cwnd range", g + "S\t0.5\t0\t0\t1\t1e300\n"},
      {"huge time in range", "S\t999999999999.0\t0\t0\t1\t1.0\n"},
      {"time just out of range", "S\t1000000000001.0\t0\t0\t1\t1.0\n"},
      {"long mantissa", "S\t0.12345678901234567890123\t0\t0\t1\t1.0\n"},
      {"double tab separators", "S\t\t0.5\t0\t0\t1\t1.0\n"},
      {"huge garbage line", std::string(10000, 'x') + "\n" + g},
      {"binary garbage", std::string("\x01\x02\xff\xfe\n") + g},
  };
  for (const auto& c : cases) {
    expect_full_parity(c.content, c.name);
  }
}

TEST(TraceFastParity, TornTailAtEveryByteOffset) {
  const std::string prefix = good_block();
  const std::string last = "S\t12.345678901\t17\t1\t9\t23.000000000";
  for (std::size_t cut = 0; cut <= last.size(); ++cut) {
    const std::string content = prefix + last.substr(0, cut);
    expect_full_parity(content, "torn tail cut=" + std::to_string(cut));
  }
}

TEST(TraceFastParity, ChunkBoundarySweep) {
  // Boundaries at every alignment relative to the SWAR word and the
  // parser's record structure: force chunk splits at 1..64-byte grain
  // over a mixed clean/corrupt input and require exact parity.
  std::string content;
  for (int i = 0; i < 40; ++i) {
    content += good_block();
    if (i % 7 == 3) {
      content += "garbage line " + std::to_string(i) + "\n";
    }
  }
  content += "S\t99.0\t12";  // torn tail
  const Parsed ref = reference_lenient(content);
  for (std::size_t grain = 1; grain <= 64; ++grain) {
    const FastReaderOptions opts{.threads = 4,
                                 .min_chunk_bytes = grain * 16};
    const Parsed fast = fast_lenient(content, opts);
    const std::string tag = "grain=" + std::to_string(grain);
    expect_events_identical(ref.events, fast.events, tag);
    expect_reports_identical(ref.report, fast.report, tag);
  }
}

TEST(TraceFastParity, ReportInvariantAcrossThreadCounts) {
  std::string content;
  for (int i = 0; i < 200; ++i) {
    content += good_block();
  }
  content += "junk\n" + good_block() + "S\t1.0\t1";
  const Parsed j1 = fast_lenient(content, {.threads = 1, .min_chunk_bytes = 1});
  const Parsed j4 = fast_lenient(content, {.threads = 4, .min_chunk_bytes = 1});
  const Parsed j16 = fast_lenient(content, {.threads = 16, .min_chunk_bytes = 1});
  expect_events_identical(j1.events, j4.events, "j1 vs j4");
  expect_reports_identical(j1.report, j4.report, "j1 vs j4");
  expect_events_identical(j1.events, j16.events, "j1 vs j16");
  expect_reports_identical(j1.report, j16.report, "j1 vs j16");
}

// ---------------------------------------------------------------------------
// Regression tests for the three fixed bugs. Each fails on the pre-fix
// parser (which accepted garbage tails, miscounted CRLF/torn bytes, and
// never flagged a parseable torn tail).

TEST(TraceParseBugfix, TrailingGarbageIsRejected) {
  {
    std::istringstream is("F\t1.0\t5\tgarbage\n");
    TraceReadReport rep;
    const auto events = read_trace_lenient(is, &rep);
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(rep.lines_dropped, 1u);
    EXPECT_EQ(rep.first_error, "trailing garbage");
  }
  {
    // Two records merged onto one line must not parse as the first one.
    std::istringstream is("F\t1.0\t5\tF\t1.1\t6\n");
    TraceReadReport rep;
    const auto events = read_trace_lenient(is, &rep);
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(rep.first_error, "trailing garbage");
  }
  {
    // Trailing whitespace is still fine.
    std::istringstream is("F\t1.0\t5 \t\n");
    TraceReadReport rep;
    const auto events = read_trace_lenient(is, &rep);
    EXPECT_EQ(events.size(), 1u);
    EXPECT_TRUE(rep.clean());
  }
  {
    std::istringstream is("F\t1.0\t5\tgarbage\n");
    EXPECT_THROW((void)read_trace(is), std::invalid_argument);
  }
}

TEST(TraceParseBugfix, BytesDroppedCountsActualDiskBytes) {
  {
    // CRLF dropped line: "junk\r\n" is 6 bytes on disk, not 5.
    std::istringstream is("junk\r\nS\t0.5\t0\t0\t1\t1.0\n");
    TraceReadReport rep;
    (void)read_trace_lenient(is, &rep);
    EXPECT_EQ(rep.lines_dropped, 1u);
    EXPECT_EQ(rep.bytes_dropped, std::string("junk\r\n").size());
  }
  {
    // Torn bad tail: "S\t9" is 3 bytes on disk — there is no newline.
    std::istringstream is("S\t0.5\t0\t0\t1\t1.0\nS\t9");
    TraceReadReport rep;
    (void)read_trace_lenient(is, &rep);
    EXPECT_EQ(rep.lines_dropped, 1u);
    EXPECT_EQ(rep.bytes_dropped, std::string("S\t9").size());
    EXPECT_TRUE(rep.truncated);
  }
}

TEST(TraceParseBugfix, UnterminatedParseableFinalLineIsSuspect) {
  std::istringstream is("S\t0.5\t0\t0\t1\t1.0\nA\t0.6\t1\t0");
  TraceReadReport rep;
  const auto events = read_trace_lenient(is, &rep);
  ASSERT_EQ(events.size(), 2u);  // still salvaged...
  EXPECT_FALSE(rep.truncated);
  EXPECT_TRUE(rep.suspect_final_event);  // ...but surfaced
  EXPECT_FALSE(rep.clean());
  EXPECT_NE(rep.describe().find("no newline"), std::string::npos) << rep.describe();
}

// ---------------------------------------------------------------------------
// File-level fast path: mmap load, fallbacks, failpoints.

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + name;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << content;
  return path;
}

TEST(TraceFastFile, MmapLoadMatchesReferenceReader) {
  std::string content;
  for (int i = 0; i < 50; ++i) {
    content += good_block();
  }
  content += "%%% corrupted tail %%%\nS\t99.0\t12";
  const std::string path = write_temp("pftk_fast_mmap.tsv", content);

  TraceReadReport fast_rep;
  const auto fast_events = load_trace_file_lenient(path, &fast_rep);
  const Parsed ref = reference_lenient(content);
  expect_events_identical(ref.events, fast_events, "mmap load");
  expect_reports_identical(ref.report, fast_rep, "mmap load");
  EXPECT_TRUE(fast_rep.truncated);
  std::remove(path.c_str());
}

TEST(TraceFastFile, StrictLoadThrowsIdenticalMessage) {
  const std::string content = good_block() + "X\t1\t2\t3\n";
  const std::string path = write_temp("pftk_fast_strict.tsv", content);
  std::string fast_what;
  try {
    (void)load_trace_file(path);
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    fast_what = e.what();
  }
  std::string ref_what;
  try {
    std::istringstream is(content);
    (void)read_trace(is);
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    ref_what = e.what();
  }
  EXPECT_EQ(ref_what, fast_what);
  EXPECT_NE(fast_what.find("line 7"), std::string::npos) << fast_what;
  std::remove(path.c_str());
}

TEST(TraceFastFile, EmptyFileAndDeviceFallback) {
  const std::string path = write_temp("pftk_fast_empty.tsv", "");
  TraceReadReport rep;
  EXPECT_TRUE(load_trace_file_lenient(path, &rep).empty());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.lines_total, 0u);
  std::remove(path.c_str());

  // /dev/null is a character device: not mappable, istream fallback.
  TraceReadReport dev_rep;
  EXPECT_TRUE(load_trace_file_lenient("/dev/null", &dev_rep).empty());
  EXPECT_TRUE(dev_rep.clean());
}

TEST(TraceFastFile, ArmedFailpointFallsBackAndStillFires) {
  const std::string content = good_block() + good_block();
  const std::string path = write_temp("pftk_fast_failpoint.tsv", content);

  // Reference behavior with the spec armed on a plain istream read.
  robust::FailpointRegistry::instance().disarm_all();
  robust::FailpointRegistry::instance().arm_specs(
      "trace.read.line:after=3:action=short_write:arg=2");
  Parsed ref;
  {
    std::ifstream is(path);
    ref.events = read_trace_lenient(is, &ref.report);
  }
  EXPECT_EQ(robust::FailpointRegistry::instance().fired_count("trace.read.line"), 1u);

  // The file loader must take the fallback (not the mmap path) while the
  // spec is armed, so the torn tail is injected identically.
  robust::FailpointRegistry::instance().disarm_all();
  robust::FailpointRegistry::instance().arm_specs(
      "trace.read.line:after=3:action=short_write:arg=2");
  TraceReadReport fp_rep;
  const auto fp_events = load_trace_file_lenient(path, &fp_rep);
  robust::FailpointRegistry::instance().disarm_all();

  expect_events_identical(ref.events, fp_events, "failpoint fallback");
  expect_reports_identical(ref.report, fp_rep, "failpoint fallback");
  // The injected short_write clips line 4 ("# header" + 3 records, so a
  // record line) to 2 bytes: a torn, unparseable tail.
  EXPECT_TRUE(fp_rep.truncated);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Scanner primitives.

TEST(TraceScan, FindNewlineMatchesMemchrEverywhere) {
  // Deterministic pseudo-random buffer with '\n' sprinkled at awkward
  // offsets (SWAR word edges, AVX lane edges, head/tail remainders).
  std::string buf(517, 'a');
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (char& c : buf) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    c = static_cast<char>('a' + (state >> 60));
  }
  for (std::size_t pos : {std::size_t{7}, std::size_t{8}, std::size_t{31},
                          std::size_t{32}, std::size_t{63}, std::size_t{64},
                          std::size_t{255}, std::size_t{516}}) {
    buf[pos] = '\n';
  }
  for (std::size_t start = 0; start <= buf.size(); ++start) {
    const void* hit = start < buf.size()
                          ? std::memchr(buf.data() + start, '\n', buf.size() - start)
                          : nullptr;
    const std::size_t expected =
        hit == nullptr
            ? std::string_view::npos
            : static_cast<std::size_t>(static_cast<const char*>(hit) - buf.data());
    EXPECT_EQ(find_newline(buf, start), expected) << "start=" << start;
  }
}

TEST(TraceScan, SplitLineAlignedCoversInputWithWholeLineChunks) {
  std::string content;
  for (int i = 0; i < 23; ++i) {
    content += "line number " + std::to_string(i) + "\n";
  }
  content += "torn";
  for (std::size_t want : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                           std::size_t{16}, std::size_t{1000}}) {
    const auto chunks = split_line_aligned(content, want);
    ASSERT_FALSE(chunks.empty()) << want;
    EXPECT_EQ(chunks.front().first, 0u);
    EXPECT_EQ(chunks.back().second, content.size());
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      EXPECT_LT(chunks[i].first, chunks[i].second) << "empty chunk " << i;
      if (i > 0) {
        EXPECT_EQ(chunks[i].first, chunks[i - 1].second) << "gap at " << i;
        EXPECT_EQ(content[chunks[i].first - 1], '\n') << "unaligned at " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The 4 GiB-boundary case: offsets past 2^32 must not wrap anywhere in
// the scanner or the chunk bookkeeping. Far too big for tier-1, so it
// only runs when explicitly requested.

TEST(TraceFastHuge, FourGiBBoundarySyntheticTrace) {
  if (std::getenv("PFTK_HUGE_TESTS") == nullptr) {
    GTEST_SKIP() << "set PFTK_HUGE_TESTS=1 to run the 4 GiB ingest test";
  }
  const std::string path = testing::TempDir() + "pftk_fast_4gib.tsv";
  const std::string block = good_block();
  constexpr std::uint64_t kTarget = (1ULL << 32) + (1ULL << 20);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    std::uint64_t written = 0;
    while (written < kTarget) {
      os << block;
      written += block.size();
    }
    os << "S\t99.0\t12";  // torn tail right past the 4 GiB boundary
  }
  const std::uint64_t blocks = (kTarget + block.size() - 1) / block.size();
  TraceReadReport rep;
  const auto events = load_trace_file_lenient(path, &rep);
  EXPECT_EQ(events.size(), blocks * 5);
  EXPECT_EQ(rep.lines_total, blocks * 6 + 1);
  EXPECT_EQ(rep.lines_dropped, 1u);
  EXPECT_TRUE(rep.truncated);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pftk::trace
