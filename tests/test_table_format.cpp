#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "exp/table_format.hpp"

namespace pftk::exp {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  std::istringstream lines(os.str());
  std::string header;
  std::string rule;
  std::string row1;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  // Column alignment: "value" in the header and "1" in the first row
  // start at the same offset.
  EXPECT_EQ(header.find("value"), row1.find('1'));
  EXPECT_NE(header.find("name"), std::string::npos);
  EXPECT_NE(row1.find("alpha"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, WideRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, HeaderRuleSeparatesRows) {
  TextTable t({"col"});
  t.add_row({"val"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("---"), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 3), "1.000");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Unsigned) {
  EXPECT_EQ(fmt_u(0), "0");
  EXPECT_EQ(fmt_u(123456789ULL), "123456789");
}

}  // namespace
}  // namespace pftk::exp
