// Journal entries round-trip byte-exactly, and replay recovers the
// ordered valid prefix of a torn (killed mid-append) file.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "exp/campaign/campaign_journal.hpp"
#include "robust/durable_file.hpp"
#include "robust/failpoint.hpp"

namespace pftk::exp::campaign {
namespace {

JournalEntry ok_entry(std::size_t index) {
  JournalEntry entry;
  entry.index = index;
  entry.key = "a->b/s" + std::to_string(index) + "/clean/full";
  entry.ok = true;
  entry.attempts = 1;
  entry.metrics.packets_sent = 1234;
  entry.metrics.send_rate = 12.34;
  entry.metrics.p = 0.0123456789012345678;  // exercises %.17g round-trip
  entry.metrics.rtt = 0.2;
  entry.metrics.t0 = 2.5;
  entry.metrics.predicted = 1500.75;
  entry.metrics.forward_faults.offered = 1000;
  entry.metrics.forward_faults.dropped_blackout = 7;
  entry.metrics.reverse_faults.offered = 500;
  entry.metrics.reverse_faults.dropped_loss = 3;
  return entry;
}

JournalEntry failed_entry(std::size_t index) {
  JournalEntry entry;
  entry.index = index;
  entry.key = "a->b/s" + std::to_string(index) + "/dark/full";
  entry.ok = false;
  entry.attempts = 3;
  entry.failure_class = FailureClass::kTransient;
  entry.failure_kind = FailureKind::kWatchdogStall;
  entry.error = "watchdog: stall \"quoted\"\nwith newline and \\backslash";
  return entry;
}

TEST(CampaignJournal, OkEntryRoundTrips) {
  const JournalEntry entry = ok_entry(0);
  const JournalEntry parsed = JournalEntry::from_json(entry.to_json());
  EXPECT_EQ(parsed.index, entry.index);
  EXPECT_EQ(parsed.key, entry.key);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.attempts, entry.attempts);
  EXPECT_EQ(parsed.metrics.packets_sent, entry.metrics.packets_sent);
  EXPECT_DOUBLE_EQ(parsed.metrics.p, entry.metrics.p);
  EXPECT_DOUBLE_EQ(parsed.metrics.predicted, entry.metrics.predicted);
  EXPECT_EQ(parsed.metrics.forward_faults.dropped_blackout, 7u);
  EXPECT_EQ(parsed.metrics.reverse_faults.dropped_loss, 3u);
  // Re-serialization is byte-identical (the determinism contract).
  EXPECT_EQ(parsed.to_json(), entry.to_json());
}

TEST(CampaignJournal, FailedEntryRoundTripsWithEscapes) {
  const JournalEntry entry = failed_entry(4);
  const JournalEntry parsed = JournalEntry::from_json(entry.to_json());
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.failure_class, FailureClass::kTransient);
  EXPECT_EQ(parsed.failure_kind, FailureKind::kWatchdogStall);
  EXPECT_EQ(parsed.error, entry.error);
  EXPECT_EQ(parsed.to_json(), entry.to_json());
}

TEST(CampaignJournal, MalformedLinesThrow) {
  EXPECT_THROW((void)JournalEntry::from_json("{\"item\":0"), std::invalid_argument);
  EXPECT_THROW((void)JournalEntry::from_json("not json"), std::invalid_argument);
  EXPECT_THROW((void)JournalEntry::from_json("{\"item\":0,\"key\":\"k\"}"),
               std::invalid_argument);  // missing status
}

TEST(CampaignJournal, ReplayReadsOrderedPrefix) {
  std::string text = ok_entry(0).to_json() + "\n" + failed_entry(1).to_json() +
                     "\n" + ok_entry(2).to_json() + "\n";
  std::istringstream in(text);
  const JournalReplay replay = replay_journal(in);
  ASSERT_EQ(replay.entries.size(), 3u);
  EXPECT_FALSE(replay.truncated_tail);
  EXPECT_EQ(replay.valid_bytes, text.size());
  EXPECT_TRUE(replay.entries[0].ok);
  EXPECT_FALSE(replay.entries[1].ok);
}

TEST(CampaignJournal, ReplayDropsTornTail) {
  const std::string good = ok_entry(0).to_json() + "\n" + ok_entry(1).to_json() + "\n";
  // A kill mid-append leaves a partial line with no newline.
  std::istringstream in(good + "{\"item\":2,\"key\":\"a-");
  const JournalReplay replay = replay_journal(in);
  ASSERT_EQ(replay.entries.size(), 2u);
  EXPECT_TRUE(replay.truncated_tail);
  EXPECT_EQ(replay.valid_bytes, good.size());
}

TEST(CampaignJournal, ReplayDropsCompleteLineWithoutNewline) {
  // Even a parseable final line is torn if its newline never hit disk.
  const std::string good = ok_entry(0).to_json() + "\n";
  std::istringstream in(good + ok_entry(1).to_json());
  const JournalReplay replay = replay_journal(in);
  ASSERT_EQ(replay.entries.size(), 1u);
  EXPECT_TRUE(replay.truncated_tail);
  EXPECT_EQ(replay.valid_bytes, good.size());
}

TEST(CampaignJournal, ReplayRecoversPrefixAtEveryTornByteOffset) {
  // Exhaustive torn-tail sweep: truncate the last record (an ok entry and
  // a failure entry with escapes) at every byte offset, including offset
  // 0 (nothing of it hit disk) and full-length-minus-newline. Every
  // truncation must replay to exactly the two complete leading entries.
  const std::string good =
      ok_entry(0).to_json() + "\n" + failed_entry(1).to_json() + "\n";
  for (const JournalEntry& last : {ok_entry(2), failed_entry(2)}) {
    const std::string last_line = last.to_json() + "\n";
    for (std::size_t cut = 0; cut < last_line.size(); ++cut) {
      std::istringstream in(good + last_line.substr(0, cut));
      const JournalReplay replay = replay_journal(in);
      ASSERT_EQ(replay.entries.size(), 2u) << "cut at byte " << cut;
      EXPECT_EQ(replay.valid_bytes, good.size()) << "cut at byte " << cut;
      EXPECT_EQ(replay.truncated_tail, cut != 0) << "cut at byte " << cut;
      EXPECT_EQ(replay.entries[1].key, failed_entry(1).key);
    }
    // The un-truncated control: all three entries replay.
    std::istringstream in(good + last_line);
    EXPECT_EQ(replay_journal(in).entries.size(), 3u);
  }
}

TEST(CampaignJournal, ReplayRecoversFromFailpointGeneratedTornTails) {
  // The same sweep produced the way production produces it: a
  // DurableAppender with an armed short_write failpoint emits `arg`
  // bytes of the final record and fails — the replay result must match
  // the hand-truncated fixture byte for byte.
  const std::string good =
      ok_entry(0).to_json() + "\n" + failed_entry(1).to_json() + "\n";
  const std::string last_line = ok_entry(2).to_json() + "\n";
  const std::string path = ::testing::TempDir() + "pftk_journal_failpoint.jsonl";
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                last_line.size() / 2, last_line.size() - 1}) {
    std::remove(path.c_str());
    robust::FailpointRegistry::instance().disarm_all();
    robust::FailpointRegistry::instance().arm_specs(
        "journal.append:after=2:action=short_write:arg=" + std::to_string(cut));
    {
      robust::DurableAppender::Options options;
      options.truncate = true;
      robust::DurableAppender appender(path, options);
      appender.append_line(ok_entry(0).to_json());
      appender.append_line(failed_entry(1).to_json());
      EXPECT_THROW(appender.append_line(ok_entry(2).to_json()),
                   robust::IoError);
    }
    robust::FailpointRegistry::instance().disarm_all();
    const JournalReplay replay = replay_journal_file(path);
    ASSERT_EQ(replay.entries.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(replay.valid_bytes, good.size()) << "cut at byte " << cut;
    EXPECT_EQ(replay.truncated_tail, cut != 0) << "cut at byte " << cut;
  }
  std::remove(path.c_str());
}

TEST(CampaignJournal, ReplayRejectsOutOfOrderEntries) {
  std::istringstream in(ok_entry(0).to_json() + "\n" + ok_entry(2).to_json() + "\n");
  EXPECT_THROW((void)replay_journal(in), std::invalid_argument);
}

TEST(CampaignJournal, MissingFileReplaysEmpty) {
  const JournalReplay replay = replay_journal_file("/nonexistent/journal.jsonl");
  EXPECT_TRUE(replay.entries.empty());
  EXPECT_EQ(replay.valid_bytes, 0u);
}

}  // namespace
}  // namespace pftk::exp::campaign
