#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/correlation.hpp"

namespace pftk::stats {
namespace {

TEST(PairedStats, PerfectPositiveCorrelation) {
  PairedStats ps;
  for (int i = 0; i < 20; ++i) {
    ps.add(i, 3.0 * i + 1.0);
  }
  EXPECT_NEAR(ps.correlation(), 1.0, 1e-12);
  EXPECT_NEAR(ps.slope(), 3.0, 1e-12);
}

TEST(PairedStats, PerfectNegativeCorrelation) {
  PairedStats ps;
  for (int i = 0; i < 20; ++i) {
    ps.add(i, -2.0 * i + 7.0);
  }
  EXPECT_NEAR(ps.correlation(), -1.0, 1e-12);
}

TEST(PairedStats, UncorrelatedSymmetricPattern) {
  PairedStats ps;
  // y is symmetric around x's mean: correlation exactly 0.
  ps.add(-1.0, 1.0);
  ps.add(0.0, 0.0);
  ps.add(1.0, 1.0);
  EXPECT_NEAR(ps.correlation(), 0.0, 1e-12);
}

TEST(PairedStats, ConstantInputGivesZero) {
  PairedStats ps;
  ps.add(5.0, 1.0);
  ps.add(5.0, 2.0);
  ps.add(5.0, 3.0);
  EXPECT_EQ(ps.correlation(), 0.0);
  EXPECT_EQ(ps.slope(), 0.0);
}

TEST(PairedStats, FewerThanTwoPairsIsZero) {
  PairedStats ps;
  EXPECT_EQ(ps.correlation(), 0.0);
  ps.add(1.0, 2.0);
  EXPECT_EQ(ps.correlation(), 0.0);
}

TEST(PairedStats, CovarianceKnownValue) {
  PairedStats ps;
  ps.add(1.0, 2.0);
  ps.add(2.0, 4.0);
  ps.add(3.0, 6.0);
  EXPECT_NEAR(ps.covariance(), 2.0, 1e-12);  // cov of (1,2,3) with (2,4,6)
}

TEST(PearsonCorrelation, SpanOverloadMatchesAccumulator) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0};
  const std::vector<double> ys{1.1, 1.9, 4.2, 7.8};
  PairedStats ps;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ps.add(xs[i], ys[i]);
  }
  EXPECT_NEAR(pearson_correlation(xs, ys), ps.correlation(), 1e-12);
}

TEST(PearsonCorrelation, MismatchedLengthsThrow) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0};
  EXPECT_THROW((void)pearson_correlation(xs, ys), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::stats
