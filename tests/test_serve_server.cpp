// Socket-level robustness of the serve daemon: round trips for every
// verb, interleaved pipelined requests, oversized-line rejection with
// stream recovery, client disconnect mid-response not wedging a worker
// shard, connection-cap rejection, and graceful-drain accounting with a
// durable metrics snapshot.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "core/model_registry.hpp"
#include "core/tcp_model_params.hpp"
#include "core/inverse_model.hpp"
#include "obs/export.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace pftk::serve {
namespace {

std::string test_socket(const std::string& name) {
  return "/tmp/pftk_tsrv_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

/// Minimal blocking unix-socket client with line-buffered reads.
class RawClient {
 public:
  explicit RawClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() { close_now(); }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void close_now() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool send_text(const std::string& text) {
    const char* data = text.data();
    std::size_t left = text.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
      if (n <= 0) {
        return false;
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next '\n'-terminated line (without the newline), or empty on
  /// timeout/EOF. Lines already buffered are returned without I/O.
  std::string read_line(int timeout_ms = 5000) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) {
        return {};
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        return {};
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

ServeConfig base_config(const std::string& name) {
  ServeConfig config;
  config.socket_path = test_socket(name);
  config.shards = 1;  // deterministic routing for the protocol tests
  return config;
}

TEST(ServeServer, PingAndModelMatchTheLibrary) {
  Server server(base_config("model"));
  server.start();
  RawClient client(server.config().socket_path);
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.send_text("PING hello\n"));
  const Response pong = parse_response(client.read_line());
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.id, "hello");

  ASSERT_TRUE(client.send_text(
      "MODEL m1 p=0.02 rtt=0.1 t0=0.4 wm=16 b=2 model=full\n"));
  const Response resp = parse_response(client.read_line());
  ASSERT_TRUE(resp.ok);
  ASSERT_NE(resp.find("rate"), nullptr);
  const model::ModelParams params{0.02, 0.1, 0.4, 2, 16.0};
  const double expected = model::evaluate_model(model::ModelKind::kFull, params);
  EXPECT_NEAR(std::stod(*resp.find("rate")), expected, 1e-9 * expected);
  ASSERT_NE(resp.find("model"), nullptr);
  EXPECT_EQ(*resp.find("model"), "full");

  server.request_stop();
  const ServeSummary summary = server.wait();
  EXPECT_TRUE(summary.accounting_ok());
  EXPECT_EQ(summary.pings, 1u);
  EXPECT_EQ(summary.served, 1u);
  EXPECT_EQ(summary.connections, 1u);
}

TEST(ServeServer, InverseMatchesTheInversionLibrary) {
  Server server(base_config("inverse"));
  server.start();
  RawClient client(server.config().socket_path);
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.send_text("INVERSE i1 rate=50 rtt=0.1 t0=0.4 wm=64 b=2\n"));
  const Response resp = parse_response(client.read_line());
  ASSERT_TRUE(resp.ok);
  ASSERT_NE(resp.find("max_p"), nullptr);
  ASSERT_NE(resp.find("wm_required"), nullptr);
  model::ModelParams params{0.01, 0.1, 0.4, 2, 64.0};
  const double max_p = model::max_loss_for_rate(params, 50.0);
  const double wm_req = model::required_window_for_rate(params, 50.0);
  EXPECT_NEAR(std::stod(*resp.find("max_p")), max_p, 1e-9);
  EXPECT_NEAR(std::stod(*resp.find("wm_required")), wm_req,
              1e-9 * (wm_req > 1.0 ? wm_req : 1.0));
}

TEST(ServeServer, CalibSummarizesATraceAndReportsDroppedLines) {
  const std::string trace_path =
      "/tmp/pftk_tsrv_calib_" + std::to_string(::getpid()) + ".tsv";
  {
    std::ofstream out(trace_path);
    out << "# synthetic capture\n";
    for (int i = 1; i <= 10; ++i) {
      out << "S 0.10000000" << (i - 1) << " " << i << " 0 1 2\n";
    }
    out << "R 0.300000000 0.100000000 1\n";
    out << "R 0.400000000 0.120000000 1\n";
    out << "this line is damaged garbage\n";
  }

  Server server(base_config("calib"));
  server.start();
  RawClient client(server.config().socket_path);
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.send_text("CALIB c1 trace=" + trace_path + "\n"));
  const Response resp = parse_response(client.read_line());
  ASSERT_TRUE(resp.ok) << resp.id;
  ASSERT_NE(resp.find("packets"), nullptr);
  EXPECT_EQ(*resp.find("packets"), "10");
  ASSERT_NE(resp.find("lines_dropped"), nullptr);
  EXPECT_EQ(*resp.find("lines_dropped"), "1");  // lenient read salvages the rest

  // An unreadable trace is an INTERNAL answer, not a dropped request.
  ASSERT_TRUE(client.send_text("CALIB c2 trace=/nonexistent/trace.tsv\n"));
  const Response err = parse_response(client.read_line());
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.code, ErrCode::kInternal);
  EXPECT_EQ(err.id, "c2");

  server.request_stop();
  const ServeSummary summary = server.wait();
  EXPECT_TRUE(summary.accounting_ok());
  EXPECT_EQ(summary.internal_errors, 1u);
  std::remove(trace_path.c_str());
}

TEST(ServeServer, InterleavedPipelinedRequestsAllAnswered) {
  Server server(base_config("pipeline"));
  server.start();
  RawClient client(server.config().socket_path);
  ASSERT_TRUE(client.connected());

  // One write: two MODEL param sets interleaved with INVERSE and PING —
  // the id is the only correlation key, order of answers is free.
  std::string burst;
  std::vector<std::string> ids;
  for (int i = 0; i < 12; ++i) {
    const std::string id = "q" + std::to_string(i);
    ids.push_back(id);
    switch (i % 4) {
      case 0:
        burst += "MODEL " + id + " p=0.0" + std::to_string(1 + i % 3) +
                 " rtt=0.1 t0=0.4 wm=16\n";
        break;
      case 1:
        burst += "MODEL " + id + " p=0.05 rtt=0.2 t0=0.8 wm=32 model=approx\n";
        break;
      case 2:
        burst += "INVERSE " + id + " rate=40 rtt=0.1 t0=0.4 wm=64\n";
        break;
      default:
        burst += "PING " + id + "\n";
        break;
    }
  }
  ASSERT_TRUE(client.send_text(burst));

  std::vector<std::string> answered;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::string line = client.read_line();
    ASSERT_FALSE(line.empty()) << "response " << i << " never arrived";
    const Response resp = parse_response(line);
    EXPECT_TRUE(resp.ok) << line;
    answered.push_back(resp.id);
  }
  std::sort(answered.begin(), answered.end());
  std::vector<std::string> expected = ids;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(answered, expected);

  server.request_stop();
  EXPECT_TRUE(server.wait().accounting_ok());
}

TEST(ServeServer, OversizedLinesGetToobigAndTheStreamRecovers) {
  ServeConfig config = base_config("toobig");
  config.max_line_bytes = 128;
  Server server(config);
  server.start();
  RawClient client(config.socket_path);
  ASSERT_TRUE(client.connected());

  // A complete line over the cap: rejected with the recovered id.
  std::string big = "MODEL big p=0.02 rtt=0.1 t0=0.4 wm=16";
  big.append(200, ' ');
  big += "b=2\n";
  ASSERT_TRUE(client.send_text(big));
  const Response r1 = parse_response(client.read_line());
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.code, ErrCode::kTooBig);
  EXPECT_EQ(r1.id, "big");

  // A newline-less flood past the cap: rejected once, then everything up
  // to the next newline is discarded and the stream keeps working.
  std::string flood(300, 'x');
  ASSERT_TRUE(client.send_text(flood));
  const Response r2 = parse_response(client.read_line());
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.code, ErrCode::kTooBig);
  ASSERT_TRUE(client.send_text("tail-of-flood\nPING alive\n"));
  const Response r3 = parse_response(client.read_line());
  EXPECT_TRUE(r3.ok);
  EXPECT_EQ(r3.id, "alive");

  server.request_stop();
  const ServeSummary summary = server.wait();
  EXPECT_EQ(summary.oversized, 2u);
  EXPECT_TRUE(summary.accounting_ok());
}

TEST(ServeServer, MalformedLinesAreBadreqNotDisconnects) {
  Server server(base_config("badreq"));
  server.start();
  RawClient client(server.config().socket_path);
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.send_text("MODEL m p=nan rtt=0.1 t0=0.4 wm=8\nPING ok\n"));
  const Response bad = parse_response(client.read_line());
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, ErrCode::kBadRequest);
  EXPECT_EQ(bad.id, "m");
  const Response pong = parse_response(client.read_line());
  EXPECT_TRUE(pong.ok);

  server.request_stop();
  const ServeSummary summary = server.wait();
  EXPECT_EQ(summary.protocol_errors, 1u);
  EXPECT_TRUE(summary.accounting_ok());
}

TEST(ServeServer, DisconnectMidResponseDoesNotWedgeTheShard) {
  ServeConfig config = base_config("disconnect");
  config.slow_us = 2000;  // responses land well after the abrupt close
  Server server(config);
  server.start();

  {
    RawClient rude(config.socket_path);
    ASSERT_TRUE(rude.connected());
    std::string burst;
    for (int i = 0; i < 16; ++i) {
      burst += "MODEL d" + std::to_string(i) +
               " p=0.02 rtt=0.1 t0=0.4 wm=16\n";
    }
    ASSERT_TRUE(rude.send_text(burst));
    rude.close_now();  // vanish with every response still pending
  }

  // The same (only) shard must still answer a polite client promptly.
  RawClient polite(config.socket_path);
  ASSERT_TRUE(polite.connected());
  ASSERT_TRUE(polite.send_text("MODEL ok p=0.02 rtt=0.1 t0=0.4 wm=16\n"));
  const std::string line = polite.read_line(10'000);
  ASSERT_FALSE(line.empty()) << "shard wedged by the dead client";
  const Response resp = parse_response(line);
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(resp.id, "ok");

  server.request_stop();
  const ServeSummary summary = server.wait();
  // Every admitted request was answered (or its write hit the dead
  // socket and was counted); the identity survives the rude client.
  EXPECT_TRUE(summary.accounting_ok());
  EXPECT_EQ(summary.requests, 17u);
}

TEST(ServeServer, ConnectionCapRejectsWithBusyGreeting) {
  ServeConfig config = base_config("cap");
  config.max_clients = 1;
  Server server(config);
  server.start();

  RawClient first(config.socket_path);
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.send_text("PING a\n"));
  EXPECT_TRUE(parse_response(first.read_line()).ok);  // fully registered

  RawClient second(config.socket_path);
  ASSERT_TRUE(second.connected());
  const Response refused = parse_response(second.read_line());
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, ErrCode::kBusy);
  EXPECT_NE(refused.find("retry_ms"), nullptr);

  server.request_stop();
  const ServeSummary summary = server.wait();
  EXPECT_EQ(summary.rejected_connections, 1u);
  EXPECT_EQ(summary.connections, 1u);
}

TEST(ServeServer, DrainFlushesAParseableDurableSnapshot) {
  ServeConfig config = base_config("drainflush");
  config.metrics_out =
      "/tmp/pftk_tsrv_drain_" + std::to_string(::getpid()) + ".jsonl";
  std::remove(config.metrics_out.c_str());
  Server server(config);
  server.start();
  RawClient client(config.socket_path);
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send_text("MODEL f" + std::to_string(i) +
                                 " p=0.02 rtt=0.1 t0=0.4 wm=16\n"));
    EXPECT_TRUE(parse_response(client.read_line()).ok);
  }
  server.request_stop();
  const ServeSummary summary = server.wait();
  EXPECT_EQ(summary.served, 5u);

  const obs::ObsBundle bundle = obs::load_obs_file(config.metrics_out);
  EXPECT_EQ(bundle.source, "serve");
  const obs::MetricValue* served =
      bundle.metrics.find("pftk_serve_served_total");
  ASSERT_NE(served, nullptr);
  EXPECT_DOUBLE_EQ(served->value, 5.0);
  const obs::MetricValue* latency =
      bundle.metrics.find("pftk_serve_latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 5u);
  std::remove(config.metrics_out.c_str());
}

TEST(ServeServer, ConfigValidationIsTyped) {
  ServeConfig config;
  config.socket_path = test_socket("validate");
  config.shards = 0;
  EXPECT_THROW(config.validate(), model::ParamError);
  config.shards = 2;
  config.queue_depth = 0;
  EXPECT_THROW(config.validate(), model::ParamError);
  config.queue_depth = 64;
  config.socket_path = std::string(200, 'x');
  EXPECT_THROW(config.validate(), model::ParamError);
}

}  // namespace
}  // namespace pftk::serve
