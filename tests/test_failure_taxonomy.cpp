// Failure classification and retry arithmetic: the two pieces the
// campaign runner composes into "retry transients with backoff,
// record permanents once".
#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/campaign/failure_taxonomy.hpp"
#include "exp/campaign/retry_policy.hpp"
#include "sim/sim_watchdog.hpp"

namespace pftk::exp::campaign {
namespace {

TEST(FailureTaxonomy, WatchdogStallIsTransient) {
  const sim::WatchdogError err(sim::WatchdogSnapshot{.reason = "no progress"});
  const FailureVerdict v = classify_failure(err);
  EXPECT_EQ(v.cls, FailureClass::kTransient);
  EXPECT_EQ(v.kind, FailureKind::kWatchdogStall);
  EXPECT_TRUE(v.retryable());
}

TEST(FailureTaxonomy, WallDeadlineTripIsItsOwnKind) {
  sim::WatchdogSnapshot snap{.reason = "wall-clock deadline exceeded"};
  snap.wall_deadline = true;
  const sim::WatchdogError err(std::move(snap));
  const FailureVerdict v = classify_failure(err);
  EXPECT_EQ(v.cls, FailureClass::kTransient);
  EXPECT_EQ(v.kind, FailureKind::kWallDeadline);
}

TEST(FailureTaxonomy, MarkedTransientIsTransient) {
  const TransientCampaignError err("trace file mid-write");
  const FailureVerdict v = classify_failure(err);
  EXPECT_EQ(v.cls, FailureClass::kTransient);
  EXPECT_EQ(v.kind, FailureKind::kMarkedTransient);
}

TEST(FailureTaxonomy, InvalidInputIsPermanent) {
  const std::invalid_argument bad_arg("ModelParams: p must be in [0, 1)");
  EXPECT_EQ(classify_failure(bad_arg).cls, FailureClass::kPermanent);
  EXPECT_EQ(classify_failure(bad_arg).kind, FailureKind::kInvalidInput);
  const std::domain_error bad_domain("NaN model parameter");
  EXPECT_EQ(classify_failure(bad_domain).kind, FailureKind::kInvalidInput);
  EXPECT_FALSE(classify_failure(bad_domain).retryable());
}

TEST(FailureTaxonomy, TruncatedTraceMessageIsTransient) {
  const std::runtime_error err("read salvaged 10 events, input truncated mid-record");
  const FailureVerdict v = classify_failure(err);
  EXPECT_EQ(v.cls, FailureClass::kTransient);
  EXPECT_EQ(v.kind, FailureKind::kTruncatedTrace);
}

TEST(FailureTaxonomy, UnknownErrorsArePermanent) {
  const std::runtime_error err("disk on fire");
  const FailureVerdict v = classify_failure(err);
  EXPECT_EQ(v.cls, FailureClass::kPermanent);
  EXPECT_EQ(v.kind, FailureKind::kUnknown);
  EXPECT_FALSE(v.retryable());
}

TEST(FailureTaxonomy, NamesRoundTrip) {
  EXPECT_EQ(failure_class_name(FailureClass::kTransient), "transient");
  EXPECT_EQ(failure_class_name(FailureClass::kPermanent), "permanent");
  for (const FailureKind kind :
       {FailureKind::kNone, FailureKind::kWatchdogStall, FailureKind::kWallDeadline,
        FailureKind::kTruncatedTrace, FailureKind::kMarkedTransient,
        FailureKind::kInvalidInput, FailureKind::kUnknown}) {
    EXPECT_EQ(failure_kind_from_name(failure_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)failure_kind_from_name("gremlins"), std::invalid_argument);
}

TEST(RetryPolicy, BackoffIsCappedExponential) {
  RetryPolicy policy;
  policy.backoff_base = std::chrono::milliseconds{25};
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap = std::chrono::milliseconds{150};
  EXPECT_EQ(policy.backoff(0).count(), 0);  // first attempt never waits
  EXPECT_EQ(policy.backoff(1).count(), 25);
  EXPECT_EQ(policy.backoff(2).count(), 50);
  EXPECT_EQ(policy.backoff(3).count(), 100);
  EXPECT_EQ(policy.backoff(4).count(), 150);  // capped
  EXPECT_EQ(policy.backoff(20).count(), 150);
}

TEST(RetryPolicy, ValidateRejectsBadKnobs) {
  RetryPolicy policy;
  EXPECT_NO_THROW(policy.validate());
  policy.max_attempts = 0;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.max_attempts = 3;
  policy.backoff_multiplier = 0.5;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy.backoff_multiplier = 2.0;
  policy.backoff_base = std::chrono::milliseconds{-1};
  EXPECT_THROW(policy.validate(), std::invalid_argument);
}

TEST(RetryPolicy, SeedPerturbationIsDeterministicAndIdentityOnAttemptZero) {
  EXPECT_EQ(perturbed_seed(1998, 0), 1998u);  // clean run = unsupervised run
  const std::uint64_t first = perturbed_seed(1998, 1);
  const std::uint64_t second = perturbed_seed(1998, 2);
  EXPECT_NE(first, 1998u);
  EXPECT_NE(first, second);
  EXPECT_EQ(first, perturbed_seed(1998, 1));  // reproducible
  EXPECT_NE(perturbed_seed(1999, 1), first);  // base seed matters
}

}  // namespace
}  // namespace pftk::exp::campaign
