// Runtime invariant checker: clean simulations run violation-free with
// the checker interposed (the Connection default), a deliberately broken
// invariant is caught and classified permanent/"invariant", and counting
// mode records without throwing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exp/campaign/failure_taxonomy.hpp"
#include "sim/connection.hpp"
#include "sim/invariants.hpp"
#include "sim/tcp_reno_sender.hpp"

namespace pftk::sim {
namespace {

ConnectionConfig lossy_config() {
  ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.forward_link.propagation_delay = 0.05;
  cfg.reverse_link.propagation_delay = 0.05;
  cfg.forward_loss = BernoulliLossSpec{0.05};
  cfg.seed = 11;
  return cfg;
}

TEST(Invariants, CleanLossyRunHasZeroViolations) {
  Connection conn(lossy_config());
  ASSERT_NE(conn.invariants(), nullptr);  // installed by default
  const ConnectionSummary s = conn.run_for(300.0);
  EXPECT_GT(s.packets_sent, 0u);
  EXPECT_EQ(conn.invariants()->violations(), 0u);
  // The checker actually saw the run: one check per observable event.
  EXPECT_GT(conn.invariants()->checks_run(), 1000u);
  EXPECT_EQ(conn.invariants()->first_violation(), "");
}

TEST(Invariants, CheckerCanBeDisabled) {
  ConnectionConfig cfg = lossy_config();
  cfg.check_invariants = false;
  Connection conn(cfg);
  EXPECT_EQ(conn.invariants(), nullptr);
  EXPECT_GT(conn.run_for(60.0).packets_sent, 0u);
}

TEST(Invariants, CheckerForwardsToDownstreamObserver) {
  struct CountingObserver final : SenderObserver {
    std::uint64_t events = 0;
    void on_segment_sent(Time, SeqNo, bool, std::size_t, double) override { ++events; }
    void on_ack_received(Time, SeqNo, bool) override { ++events; }
    void on_fast_retransmit(Time, SeqNo) override { ++events; }
    void on_timeout(Time, SeqNo, int, Duration) override { ++events; }
    void on_rtt_sample(Time, Duration, std::size_t) override { ++events; }
  };
  CountingObserver downstream;
  Connection conn(lossy_config());
  conn.set_observer(&downstream);
  conn.run_for(60.0);
  // Interposition is invisible: the downstream observer sees every event
  // the checker checked.
  EXPECT_EQ(downstream.events, conn.invariants()->checks_run());
}

/// Harness for driving the checker's hooks with corrupt event streams:
/// a healthy sender supplies valid cwnd/ssthresh state, while the hook
/// arguments (time, RTO, counts, samples) are forged.
struct CheckerFixture {
  EventQueue queue;
  TcpRenoSenderConfig config;
  std::unique_ptr<TcpRenoSender> sender;

  explicit CheckerFixture() {
    config.advertised_window = 16.0;
    sender = std::make_unique<TcpRenoSender>(queue, config);
    sender->set_send_segment([](const Segment&) {});
    sender->start();
  }
};

TEST(Invariants, BackwardsTimeThrowsAndIsClassifiedPermanent) {
  CheckerFixture f;
  InvariantChecker checker(*f.sender);
  checker.on_ack_received(1.0, 0, false);
  try {
    checker.on_ack_received(0.5, 0, false);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& ex) {
    EXPECT_EQ(ex.check(), "time_monotone");
    const auto verdict = exp::campaign::classify_failure(ex);
    EXPECT_EQ(verdict.cls, exp::campaign::FailureClass::kPermanent);
    EXPECT_EQ(verdict.kind, exp::campaign::FailureKind::kInvariantViolation);
    EXPECT_FALSE(verdict.retryable());
    EXPECT_EQ(exp::campaign::failure_kind_name(verdict.kind), "invariant");
  }
  EXPECT_EQ(checker.violations(), 1u);
}

TEST(Invariants, RtoBeyondBackoffCapIsCaught) {
  CheckerFixture f;
  InvariantChecker checker(*f.sender);
  const double cap = f.config.max_rto * 64.0;
  // At the cap: fine. Beyond it: eq. 30's backoff regime is broken.
  EXPECT_NO_THROW(checker.on_timeout(1.0, 0, 1, f.config.max_rto));
  try {
    checker.on_timeout(2.0, 0, 1, cap * 2.0);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& ex) {
    EXPECT_EQ(ex.check(), "rto_backoff_cap");
  }
}

TEST(Invariants, NonPositiveTimeoutCountIsCaught) {
  CheckerFixture f;
  InvariantChecker checker(*f.sender);
  EXPECT_THROW(checker.on_timeout(1.0, 0, 0, f.config.min_rto),
               InvariantViolation);
}

TEST(Invariants, NegativeRttSampleIsCaught) {
  CheckerFixture f;
  InvariantChecker checker(*f.sender);
  try {
    checker.on_rtt_sample(1.0, -0.25, 1);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& ex) {
    EXPECT_EQ(ex.check(), "rtt_sample_range");
  }
}

TEST(Invariants, CountingModeRecordsWithoutThrowing) {
  CheckerFixture f;
  InvariantCheckerConfig config;
  config.throw_on_violation = false;
  InvariantChecker checker(*f.sender, config);
  checker.on_ack_received(5.0, 0, false);
  EXPECT_NO_THROW(checker.on_ack_received(1.0, 0, false));  // backwards
  EXPECT_NO_THROW(checker.on_rtt_sample(6.0, -1.0, 1));     // negative
  EXPECT_EQ(checker.violations(), 2u);
  // The earliest breakage is preserved for reports.
  EXPECT_NE(checker.first_violation().find("time_monotone"), std::string::npos);
}

}  // namespace
}  // namespace pftk::sim
