// TFRC subsystem: loss-interval history, sender/receiver behaviour, and
// the closed control loop over lossy paths (including the headline
// TCP-friendliness property).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/approx_model.hpp"
#include "sim/connection.hpp"
#include "tfrc/loss_history.hpp"
#include "tfrc/tfrc_connection.hpp"

namespace pftk::tfrc {
namespace {

// ---------------------------------------------------------------------
// LossHistory
// ---------------------------------------------------------------------

TEST(LossHistory, NoLossMeansZeroRate) {
  LossHistory h;
  for (int i = 0; i < 1000; ++i) {
    h.on_packet();
  }
  EXPECT_EQ(h.loss_event_rate(), 0.0);
  EXPECT_EQ(h.mean_interval(), 0.0);
}

TEST(LossHistory, UniformIntervalsGiveReciprocalRate) {
  LossHistory h;
  for (int event = 0; event < 20; ++event) {
    for (int i = 0; i < 99; ++i) {
      h.on_packet();
    }
    h.on_loss_event();  // interval length 100 (99 received + the loss)
  }
  EXPECT_NEAR(h.mean_interval(), 100.0, 1e-9);
  EXPECT_NEAR(h.loss_event_rate(), 0.01, 1e-9);
}

TEST(LossHistory, KeepsOnlyConfiguredIntervals) {
  LossHistory h(4);
  for (int event = 0; event < 10; ++event) {
    h.on_loss_event();
  }
  EXPECT_EQ(h.closed_intervals(), 4u);
}

TEST(LossHistory, RecentIntervalsWeighMore) {
  LossHistory h;
  // Seven short intervals, then one long (most recent).
  for (int event = 0; event < 7; ++event) {
    for (int i = 0; i < 9; ++i) {
      h.on_packet();
    }
    h.on_loss_event();  // intervals of 10
  }
  for (int i = 0; i < 999; ++i) {
    h.on_packet();
  }
  h.on_loss_event();  // one interval of 1000, newest
  // Unweighted mean would be (7*10 + 1000)/8 ~ 134; the newest-first
  // weighting pulls the estimate well above that.
  EXPECT_GT(h.mean_interval(), 160.0);  // weighted mean is 175 here
}

TEST(LossHistory, OpenIntervalLowersRateAfterQuietPeriod) {
  LossHistory h;
  for (int event = 0; event < 8; ++event) {
    for (int i = 0; i < 9; ++i) {
      h.on_packet();
    }
    h.on_loss_event();
  }
  const double rate_before = h.loss_event_rate();
  for (int i = 0; i < 5000; ++i) {
    h.on_packet();  // long loss-free stretch
  }
  EXPECT_LT(h.loss_event_rate(), rate_before / 3.0);
}

TEST(LossHistory, RejectsZeroCapacity) {
  EXPECT_THROW(LossHistory(0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Closed loop
// ---------------------------------------------------------------------

TfrcConnectionConfig path(double p, std::uint64_t seed = 5) {
  TfrcConnectionConfig cfg;
  cfg.forward_link.propagation_delay = 0.1;
  cfg.reverse_link.propagation_delay = 0.1;
  if (p > 0.0) {
    cfg.forward_loss = sim::BernoulliLossSpec{p};
  }
  cfg.sender.max_rate_pps = 500.0;
  cfg.seed = seed;
  return cfg;
}

TEST(TfrcConnection, LosslessFlowRampsToTheCap) {
  TfrcConnection conn(path(0.0));
  const TfrcSummary s = conn.run_for(120.0);
  EXPECT_GT(s.packets_sent, 1000u);
  EXPECT_EQ(s.loss_event_rate, 0.0);
  // Slow start doubles to the configured cap.
  EXPECT_GT(conn.sender().current_rate(), 400.0);
}

TEST(TfrcConnection, LossyFlowConvergesNearTheFormulaRate) {
  const double p = 0.02;
  TfrcConnection conn(path(p));
  const TfrcSummary s = conn.run_for(600.0);
  ASSERT_GT(s.packets_sent, 500u);
  EXPECT_GT(s.loss_event_rate, 0.002);

  // The achieved rate should sit near eq (33) at (p_event, RTT~0.2):
  // TCP-friendliness by construction, closed through a real loop.
  pftk::model::ModelParams params;
  params.p = s.loss_event_rate;
  params.rtt = conn.sender().smoothed_rtt();
  params.t0 = 4.0 * params.rtt;
  params.b = 1;
  params.wm = pftk::model::ModelParams::unlimited_window;
  const double target = pftk::model::approx_model_send_rate(params);
  EXPECT_NEAR(s.send_rate / target, 1.0, 0.4);
}

TEST(TfrcConnection, HigherLossMeansLowerRate) {
  const double low = TfrcConnection(path(0.01)).run_for(600.0).send_rate;
  const double high = TfrcConnection(path(0.08)).run_for(600.0).send_rate;
  EXPECT_GT(low, 1.5 * high);
}

TEST(TfrcConnection, RateIsSmootherThanItsOwnLossProcess) {
  TfrcConnection conn(path(0.03));
  const TfrcSummary s = conn.run_for(600.0);
  // TFRC's selling point: a smooth rate. CoV well under 1.
  EXPECT_LT(s.rate_coefficient_of_variation, 0.6);
  EXPECT_GT(s.mean_allowed_rate, 0.0);
}

TEST(TfrcConnection, RttIsLearnedFromFeedback) {
  TfrcConnection conn(path(0.01));
  conn.run_for(60.0);
  EXPECT_NEAR(conn.sender().smoothed_rtt(), 0.2, 0.1);
}

TEST(TfrcConnection, DeterministicPerSeed) {
  const TfrcSummary a = TfrcConnection(path(0.02, 9)).run_for(120.0);
  const TfrcSummary b = TfrcConnection(path(0.02, 9)).run_for(120.0);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_received, b.packets_received);
}

TEST(TfrcSenderConfig, Validation) {
  sim::EventQueue q;
  TfrcSenderConfig bad;
  bad.initial_rate_pps = 0.0;
  EXPECT_THROW(TfrcSender(q, bad), std::invalid_argument);
  bad = TfrcSenderConfig{};
  bad.min_rate_pps = 10.0;
  bad.max_rate_pps = 1.0;
  EXPECT_THROW(TfrcSender(q, bad), std::invalid_argument);
  bad = TfrcSenderConfig{};
  bad.rtt_smoothing = 1.0;
  EXPECT_THROW(TfrcSender(q, bad), std::invalid_argument);
  bad = TfrcSenderConfig{};
  bad.b = 0;
  EXPECT_THROW(TfrcSender(q, bad), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::tfrc
