#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/full_model.hpp"
#include "core/model_terms.hpp"
#include "core/td_only_model.hpp"

namespace pftk::model {
namespace {

ModelParams params(double p, double rtt = 0.2, double t0 = 2.0, int b = 2,
                   double wm = ModelParams::unlimited_window) {
  ModelParams mp;
  mp.p = p;
  mp.rtt = rtt;
  mp.t0 = t0;
  mp.b = b;
  mp.wm = wm;
  return mp;
}

TEST(FullModel, ZeroLossGivesWindowCeiling) {
  const ModelParams mp = params(0.0, 0.25, 2.0, 2, 12.0);
  EXPECT_DOUBLE_EQ(full_model_send_rate(mp), 12.0 / 0.25);
}

TEST(FullModel, AlwaysBelowTdOnly) {
  // Timeouts only slow TCP down: the full model must predict less than
  // the pure-TD model everywhere.
  for (double p = 0.001; p < 0.5; p *= 1.6) {
    const ModelParams mp = params(p);
    EXPECT_LT(full_model_send_rate(mp), td_only_send_rate(mp)) << "p=" << p;
  }
}

TEST(FullModel, MonotoneDecreasingInLoss) {
  double prev = full_model_send_rate(params(0.0005));
  for (double p = 0.001; p < 0.95; p += 0.01) {
    const double cur = full_model_send_rate(params(p));
    EXPECT_LE(cur, prev * (1.0 + 1e-9)) << "p=" << p;
    prev = cur;
  }
}

TEST(FullModel, WindowLimitCapsLowLossRates) {
  const double wm = 8.0;
  const ModelParams capped = params(0.0001, 0.2, 2.0, 2, wm);
  const double rate = full_model_send_rate(capped);
  EXPECT_LE(rate, wm / 0.2 * 1.001);
  // At such low p the rate should be essentially the ceiling.
  EXPECT_GT(rate, 0.8 * wm / 0.2);
}

TEST(FullModel, UnlimitedWindowIsNeverWindowLimited) {
  const FullModelBreakdown b = full_model_breakdown(params(0.05));
  EXPECT_FALSE(b.window_limited);
}

TEST(FullModel, BreakdownRegimeSwitch) {
  // E[Wu] at p=0.001, b=2 is ~36.6: Wm=8 binds, Wm=64 does not.
  const FullModelBreakdown limited = full_model_breakdown(params(0.001, 0.2, 2.0, 2, 8.0));
  EXPECT_TRUE(limited.window_limited);
  EXPECT_DOUBLE_EQ(limited.expected_window, 8.0);

  const FullModelBreakdown open = full_model_breakdown(params(0.001, 0.2, 2.0, 2, 64.0));
  EXPECT_FALSE(open.window_limited);
  EXPECT_NEAR(open.expected_window, expected_unconstrained_window(0.001, 2), 1e-12);
}

TEST(FullModel, ContinuousAcrossRegimeBoundary) {
  // Pick Wm == E[Wu](p): both branches should agree closely there.
  const double p = 0.01;
  const double wm = expected_unconstrained_window(p, 2);
  const double below = full_model_send_rate(params(p, 0.2, 2.0, 2, wm * 1.0001));
  const double above = full_model_send_rate(params(p, 0.2, 2.0, 2, wm * 0.9999));
  EXPECT_NEAR(below / above, 1.0, 0.05);
}

TEST(FullModel, BreakdownRatioEqualsRate) {
  const FullModelBreakdown b = full_model_breakdown(params(0.03, 0.3, 1.5, 2, 20.0));
  EXPECT_NEAR(b.send_rate, b.numerator_packets / b.denominator_seconds, 1e-12);
  EXPECT_NEAR(b.send_rate, full_model_send_rate(params(0.03, 0.3, 1.5, 2, 20.0)), 1e-12);
}

TEST(FullModel, QHatModeMakesSmallDifference) {
  for (const double p : {0.01, 0.05, 0.15}) {
    const double exact = full_model_send_rate(params(p), QHatMode::kExact);
    const double approx = full_model_send_rate(params(p), QHatMode::kApprox);
    EXPECT_NEAR(exact / approx, 1.0, 0.25) << "p=" << p;
  }
}

TEST(FullModel, LongerTimeoutsSlowTheFlow) {
  const double fast = full_model_send_rate(params(0.05, 0.2, 1.0));
  const double slow = full_model_send_rate(params(0.05, 0.2, 8.0));
  EXPECT_GT(fast, slow);
}

TEST(FullModel, HighLossCollapsesTowardTimeoutFloor) {
  // At very high p, throughput is dominated by timeout waits: roughly one
  // useful packet per backed-off timeout sequence.
  const ModelParams mp = params(0.6, 0.2, 2.0);
  const double rate = full_model_send_rate(mp);
  EXPECT_LT(rate, 1.0);  // far below 1 packet/s with T0=2 and backoff
  EXPECT_GT(rate, 0.0);
}

TEST(FullModel, ValidatesInput) {
  ModelParams mp = params(0.01);
  mp.t0 = 0.0;
  EXPECT_THROW((void)full_model_send_rate(mp), std::invalid_argument);
}

TEST(FullModel, MatchesHandComputedValue) {
  // Hand-evaluate eq (32), unconstrained branch, p=0.04, b=2, RTT=0.2,
  // T0=2, Wm huge.
  const double p = 0.04;
  const double ew = expected_unconstrained_window(p, 2);
  const double qh = q_hat_exact(p, ew);
  const double f = backoff_polynomial(p);
  const double numerator = (1.0 - p) / p + ew + qh / (1.0 - p);
  const double denominator = 0.2 * (ew + 1.0) + qh * 2.0 * f / (1.0 - p);
  EXPECT_NEAR(full_model_send_rate(params(p)), numerator / denominator, 1e-12);
}

}  // namespace
}  // namespace pftk::model
