// Integration tests of the assembled Connection: a saturated Reno flow
// over configurable paths behaves like TCP should.
#include <gtest/gtest.h>

#include "sim/connection.hpp"

namespace pftk::sim {
namespace {

ConnectionConfig clean_path_config() {
  ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.forward_link.propagation_delay = 0.05;
  cfg.reverse_link.propagation_delay = 0.05;
  cfg.seed = 7;
  return cfg;
}

TEST(Connection, LosslessFlowIsWindowLimited) {
  Connection conn(clean_path_config());
  const ConnectionSummary s = conn.run_for(60.0);
  // With no loss the flow settles at Wm per RTT: 16 packets / 0.1 s.
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.fast_retransmits, 0u);
  EXPECT_EQ(s.retransmissions, 0u);
  EXPECT_NEAR(s.send_rate, 160.0, 16.0);  // within 10%
  EXPECT_GT(s.packets_delivered, 0u);
}

TEST(Connection, DeliveredNeverExceedsSent) {
  ConnectionConfig cfg = clean_path_config();
  cfg.forward_loss = BernoulliLossSpec{0.05};
  Connection conn(cfg);
  const ConnectionSummary s = conn.run_for(300.0);
  EXPECT_LE(s.packets_delivered, s.packets_sent);
  EXPECT_GT(s.packets_sent, 0u);
}

TEST(Connection, LossReducesSendRate) {
  Connection clean(clean_path_config());
  const double clean_rate = clean.run_for(300.0).send_rate;

  ConnectionConfig lossy_cfg = clean_path_config();
  lossy_cfg.forward_loss = BernoulliLossSpec{0.05};
  Connection lossy(lossy_cfg);
  const double lossy_rate = lossy.run_for(300.0).send_rate;

  EXPECT_LT(lossy_rate, 0.8 * clean_rate);
}

TEST(Connection, HeavyLossProducesTimeouts) {
  ConnectionConfig cfg = clean_path_config();
  cfg.forward_loss = BernoulliLossSpec{0.10};
  Connection conn(cfg);
  const ConnectionSummary s = conn.run_for(600.0);
  EXPECT_GT(s.timeouts, 0u);
  EXPECT_GT(s.packets_sent, 0u);
}

TEST(Connection, ModerateLossTriggersFastRetransmitsWithLargeWindow) {
  ConnectionConfig cfg = clean_path_config();
  cfg.sender.advertised_window = 32.0;
  cfg.forward_loss = BernoulliLossSpec{0.01};
  Connection conn(cfg);
  const ConnectionSummary s = conn.run_for(600.0);
  EXPECT_GT(s.fast_retransmits, 0u);
}

TEST(Connection, SameSeedSameResult) {
  ConnectionConfig cfg = clean_path_config();
  cfg.forward_loss = BernoulliLossSpec{0.03};
  Connection a(cfg);
  Connection b(cfg);
  const ConnectionSummary sa = a.run_for(120.0);
  const ConnectionSummary sb = b.run_for(120.0);
  EXPECT_EQ(sa.packets_sent, sb.packets_sent);
  EXPECT_EQ(sa.packets_delivered, sb.packets_delivered);
  EXPECT_EQ(sa.timeouts, sb.timeouts);
}

TEST(Connection, DifferentSeedsDiffer) {
  ConnectionConfig cfg = clean_path_config();
  cfg.forward_loss = BernoulliLossSpec{0.03};
  Connection a(cfg);
  cfg.seed = 8;
  Connection b(cfg);
  const ConnectionSummary sa = a.run_for(300.0);
  const ConnectionSummary sb = b.run_for(300.0);
  EXPECT_NE(sa.packets_sent, sb.packets_sent);
}

TEST(Connection, RunForCanBeChained) {
  ConnectionConfig cfg = clean_path_config();
  cfg.forward_loss = BernoulliLossSpec{0.02};
  Connection conn(cfg);
  const ConnectionSummary first = conn.run_for(100.0);
  const ConnectionSummary second = conn.run_for(100.0);
  EXPECT_NEAR(first.duration, 100.0, 1e-9);
  EXPECT_NEAR(second.duration, 100.0, 1e-9);
  EXPECT_GT(second.packets_sent, 0u);
}

TEST(Connection, AckLossIsTolerated) {
  ConnectionConfig cfg = clean_path_config();
  cfg.reverse_loss = BernoulliLossSpec{0.05};
  Connection conn(cfg);
  const ConnectionSummary s = conn.run_for(300.0);
  // Cumulative ACKs make ACK loss mostly harmless: flow keeps moving.
  EXPECT_GT(s.packets_delivered, 1000u);
}

TEST(Connection, RateLimitedPathCapsThroughput) {
  ConnectionConfig cfg = clean_path_config();
  cfg.forward_link.rate_pps = 50.0;
  cfg.forward_queue = DropTailSpec{10};
  Connection conn(cfg);
  const ConnectionSummary s = conn.run_for(300.0);
  // Delivered rate cannot exceed the bottleneck.
  EXPECT_LE(s.throughput, 51.0);
  EXPECT_GT(s.throughput, 25.0);
}

}  // namespace
}  // namespace pftk::sim
