#include <gtest/gtest.h>

#include <stdexcept>

#include "core/approx_model.hpp"
#include "core/full_model.hpp"
#include "core/model_registry.hpp"
#include "core/td_only_model.hpp"

namespace pftk::model {
namespace {

TEST(ModelRegistry, NamesAreDistinct) {
  EXPECT_EQ(model_name(ModelKind::kFull), "proposed (full)");
  EXPECT_EQ(model_name(ModelKind::kApproximate), "proposed (approx)");
  EXPECT_EQ(model_name(ModelKind::kTdOnly), "TD only");
}

TEST(ModelRegistry, EvaluateDispatchesToTheRightModel) {
  ModelParams mp;
  mp.p = 0.03;
  mp.rtt = 0.25;
  mp.t0 = 1.5;
  mp.wm = 30.0;
  EXPECT_DOUBLE_EQ(evaluate_model(ModelKind::kFull, mp), full_model_send_rate(mp));
  EXPECT_DOUBLE_EQ(evaluate_model(ModelKind::kApproximate, mp),
                   approx_model_send_rate(mp));
  EXPECT_DOUBLE_EQ(evaluate_model(ModelKind::kTdOnly, mp),
                   td_only_asymptotic_send_rate(mp));
}

TEST(ModelRegistry, AllKindsListsThree) {
  EXPECT_EQ(all_model_kinds.size(), 3u);
  EXPECT_EQ(all_model_kinds[0], ModelKind::kFull);
  EXPECT_EQ(all_model_kinds[1], ModelKind::kApproximate);
  EXPECT_EQ(all_model_kinds[2], ModelKind::kTdOnly);
}

TEST(ModelRegistry, OrderingFullBelowTdOnlyAboveZero) {
  ModelParams mp;
  mp.p = 0.05;
  mp.rtt = 0.2;
  mp.t0 = 2.0;
  mp.wm = ModelParams::unlimited_window;
  const double full = evaluate_model(ModelKind::kFull, mp);
  const double td = evaluate_model(ModelKind::kTdOnly, mp);
  EXPECT_GT(full, 0.0);
  EXPECT_LT(full, td);
}

TEST(ModelRegistry, PropagatesValidation) {
  ModelParams mp;
  mp.p = 2.0;
  for (const ModelKind kind : all_model_kinds) {
    EXPECT_THROW((void)evaluate_model(kind, mp), std::invalid_argument);
  }
}

}  // namespace
}  // namespace pftk::model
