#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"

namespace pftk::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(1.0, [&] { ++fired; });
  q.cancel(id);
  q.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.cancel(9999);  // must not throw
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule_at(1.0, [&] {
    times.push_back(q.now());
    q.schedule_in(1.5, [&] { times.push_back(q.now()); });
  });
  q.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until(2.0);
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-0.1, [] {}), std::invalid_argument);
}

TEST(EventQueue, ExecutedCounterAdvances) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  q.run_all();
  EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.run_until(7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueue, CancelledEventDoesNotBlockOthersAtSameTime) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(1.0, [&] { fired += 100; });
  q.schedule_at(1.0, [&] { ++fired; });
  q.cancel(id);
  q.run_all();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace pftk::sim
