#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"

namespace pftk::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(1.0, [&] { ++fired; });
  q.cancel(id);
  q.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.cancel(9999);  // must not throw
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule_at(1.0, [&] {
    times.push_back(q.now());
    q.schedule_in(1.5, [&] { times.push_back(q.now()); });
  });
  q.run_all();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until(2.0);
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-0.1, [] {}), std::invalid_argument);
}

TEST(EventQueue, ExecutedCounterAdvances) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  q.run_all();
  EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.run_until(7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueue, CancelledEventDoesNotBlockOthersAtSameTime) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(1.0, [&] { fired += 100; });
  q.schedule_at(1.0, [&] { ++fired; });
  q.cancel(id);
  q.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, MillionCancelledEventsAreReclaimed) {
  // Fault-heavy runs schedule and cancel timers constantly; lazy
  // cancellation must not let the heap grow without bound.
  EventQueue q;
  std::vector<EventId> ids;
  constexpr std::size_t kEvents = 1'000'000;
  ids.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    ids.push_back(q.schedule_at(static_cast<double>(i % 1000) + 1.0, [] {}));
  }
  EXPECT_EQ(q.pending(), kEvents);
  for (const EventId id : ids) {
    q.cancel(id);
  }
  EXPECT_EQ(q.pending(), 0u);
  // Compaction keeps dead entries below half the heap; with everything
  // cancelled, the heap must have collapsed to (near) nothing.
  EXPECT_LT(q.heap_size(), 64u);
  q.run_all();
  EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, HeapStaysProportionalToLiveEvents) {
  EventQueue q;
  std::vector<EventId> ids;
  constexpr std::size_t kEvents = 100'000;
  for (std::size_t i = 0; i < kEvents; ++i) {
    ids.push_back(q.schedule_at(static_cast<double>(i) + 1.0, [] {}));
  }
  for (std::size_t i = 0; i < kEvents; ++i) {
    if (i % 100 != 0) {
      q.cancel(ids[i]);  // keep 1% alive
    }
  }
  EXPECT_EQ(q.pending(), kEvents / 100);
  EXPECT_LE(q.heap_size(), 2 * q.pending() + 64);
  q.run_all();
  EXPECT_EQ(q.executed(), kEvents / 100);
}

TEST(EventQueue, InspectorRunsEveryNExecutedEvents) {
  EventQueue q;
  int inspections = 0;
  q.set_inspector([&] { ++inspections; }, 3);
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(static_cast<double>(i) + 1.0, [] {});
  }
  q.run_all();
  EXPECT_EQ(q.executed(), 10u);
  EXPECT_EQ(inspections, 3);  // after events 3, 6, 9
}

TEST(EventQueue, ClearedInspectorStopsFiring) {
  EventQueue q;
  int inspections = 0;
  q.set_inspector([&] { ++inspections; });
  q.schedule_at(1.0, [] {});
  q.run_all();
  EXPECT_EQ(inspections, 1);
  q.clear_inspector();
  q.schedule_at(2.0, [] {});
  q.run_all();
  EXPECT_EQ(inspections, 1);
}

TEST(EventQueue, InspectorExceptionAbortsTheRunConsistently) {
  EventQueue q;
  q.set_inspector([&] {
    if (q.executed() == 2) {
      throw std::runtime_error("budget");
    }
  });
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(static_cast<double>(i) + 1.0, [] {});
  }
  EXPECT_THROW(q.run_all(), std::runtime_error);
  EXPECT_EQ(q.executed(), 2u);
  EXPECT_EQ(q.pending(), 3u);
  // The queue survives the abort: clearing the hook lets the run resume.
  q.clear_inspector();
  q.run_all();
  EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueue, InspectorIntervalMustBePositive) {
  EventQueue q;
  EXPECT_THROW(q.set_inspector([] {}, 0), std::invalid_argument);
}

TEST(EventQueue, InspectorThrowMidRunLeavesCompactedQueueConsistent) {
  // A watchdog aborting a fault-heavy run must leave the queue in a
  // re-runnable state even when compaction has already run: pending(),
  // the clock and FIFO order all stay coherent across the abort.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int i = 0; i < 500; ++i) {
    doomed.push_back(q.schedule_at(1.0, [] {}));
  }
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(2.0 + static_cast<double>(i), [&order, i] { order.push_back(i); });
  }
  for (const EventId id : doomed) {
    q.cancel(id);  // drives cancelled_in_heap_ past the compaction trigger
  }
  EXPECT_LT(q.heap_size(), 64u);
  EXPECT_EQ(q.pending(), 10u);

  q.set_inspector([&] {
    if (q.executed() == 3) {
      throw std::runtime_error("deadline");
    }
  });
  EXPECT_THROW(q.run_all(), std::runtime_error);
  EXPECT_EQ(q.executed(), 3u);
  EXPECT_EQ(q.pending(), 7u);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);

  // The abort consumed nothing it shouldn't have: the rerun finishes the
  // remaining events in the original FIFO/time order.
  q.clear_inspector();
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelFromInsideExecutingEventKeepsFifoOrder) {
  // An executing event cancelling a *later* same-timestamp event must
  // not disturb the FIFO order of the survivors.
  EventQueue q;
  std::vector<int> order;
  EventId third = 0;
  q.schedule_at(1.0, [&] {
    order.push_back(0);
    q.cancel(third);
  });
  q.schedule_at(1.0, [&order] { order.push_back(1); });
  third = q.schedule_at(1.0, [&order] { order.push_back(2); });
  q.schedule_at(1.0, [&order] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, SelfCancelFromInsideExecutingEventIsHarmless) {
  // Cancelling your own (already-firing) id is a late cancel: a no-op
  // that must not corrupt the pending count or reclaim a reused slot.
  EventQueue q;
  int fired = 0;
  EventId self = 0;
  self = q.schedule_at(1.0, [&] {
    ++fired;
    q.cancel(self);                       // own id: already consumed
    q.schedule_at(2.0, [&] { ++fired; }); // may reuse the freed slot
    q.cancel(self);                       // still a no-op, even after reuse
  });
  q.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.executed(), 2u);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelDuringExecutionKeepsCompactionCounterConsistent) {
  // Heavy cancellation *from inside executing events* must keep the
  // compaction accounting right: the heap stays bounded by the live
  // count and every survivor still fires exactly once.
  EventQueue q;
  std::uint64_t cancelled = 0;
  std::uint64_t fired = 0;
  std::vector<EventId> batch;
  constexpr int kRounds = 50;
  constexpr int kPerRound = 200;
  for (int r = 0; r < kRounds; ++r) {
    q.schedule_at(static_cast<double>(r) + 1.0, [&] {
      ++fired;
      for (const EventId id : batch) {
        q.cancel(id);
        ++cancelled;
      }
      batch.clear();
      for (int i = 0; i < kPerRound; ++i) {
        batch.push_back(q.schedule_in(100.0, [&] { ++fired; }));
      }
    });
  }
  q.run_until(static_cast<double>(kRounds) + 1.0);
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(cancelled, static_cast<std::uint64_t>((kRounds - 1) * kPerRound));
  // Only the final round's batch is still pending.
  EXPECT_EQ(q.pending(), static_cast<std::size_t>(kPerRound));
  EXPECT_LE(q.heap_size(), 2 * q.pending() + 64);
  q.run_all();
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kRounds + kPerRound));
}

TEST(EventQueue, OversizedCallbackFallsBackToHeapCorrectly) {
  // Captures beyond the inline small-buffer capacity take the heap
  // fallback; behaviour (execution, cancellation, destruction) must be
  // identical.
  EventQueue q;
  std::array<double, 16> big{};  // 128 bytes > kInlineCapacity
  big[7] = 42.0;
  double seen = 0.0;
  q.schedule_at(1.0, [big, &seen] { seen = big[7]; });
  auto shared = std::make_shared<int>(0);
  std::array<double, 16> pad{};
  const EventId cancelled =
      q.schedule_at(1.0, [shared, pad, &seen] { seen = pad[0]; });
  EXPECT_EQ(shared.use_count(), 2);
  q.cancel(cancelled);
  // Cancel destroys the stored callable immediately: the capture's
  // shared_ptr must be released, not leaked until queue teardown.
  EXPECT_EQ(shared.use_count(), 1);
  q.run_all();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(EventQueue, TieBreakerRealizesChosenPermutation) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  // Always dispatch the youngest tied event first: [0,1,2] -> 2 runs,
  // [0,1] -> 1 runs, lone 0 runs without a decision.
  q.set_tie_breaker([](std::size_t tied) { return tied - 1; });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(EventQueue, TieBreakerReturningZeroIsFifo) {
  EventQueue q;
  std::vector<int> fifo;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&fifo, i] { fifo.push_back(i); });
  }
  int decisions = 0;
  q.set_tie_breaker([&decisions](std::size_t) {
    ++decisions;
    return std::size_t{0};
  });
  q.run_all();
  EXPECT_EQ(fifo, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_GT(decisions, 0);
}

TEST(EventQueue, TieBreakerNotConsultedWithoutTies) {
  EventQueue q;
  int decisions = 0;
  q.set_tie_breaker([&decisions](std::size_t) {
    ++decisions;
    return std::size_t{0};
  });
  for (int i = 0; i < 4; ++i) {
    q.schedule_at(1.0 + i, [] {});
  }
  q.run_all();
  EXPECT_EQ(decisions, 0);
}

TEST(EventQueue, TieGroupsAreCappedAtMaxFanout) {
  EventQueue q;
  std::size_t widest = 0;
  q.set_tie_breaker([&widest](std::size_t tied) {
    widest = std::max(widest, tied);
    return std::size_t{0};
  });
  int fired = 0;
  for (int i = 0; i < 40; ++i) {
    q.schedule_at(1.0, [&fired] { ++fired; });
  }
  q.run_all();
  EXPECT_EQ(fired, 40);
  EXPECT_GE(widest, 2u);
  EXPECT_LE(widest, EventQueue::kMaxTieFanout);
}

TEST(EventQueue, ClearedTieBreakerRestoresFifoFastPath) {
  EventQueue q;
  int decisions = 0;
  q.set_tie_breaker([&decisions](std::size_t) {
    ++decisions;
    return std::size_t{0};
  });
  q.set_tie_breaker({});
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(decisions, 0);
}

}  // namespace
}  // namespace pftk::sim
