// The generic fork-based supervisor's contract: exits are classified by
// wait status (clean / interrupted / crash / error); clean workers
// retire, crashed workers restart under capped exponential backoff;
// heartbeat silence past the stall timeout becomes a SIGKILL + restart
// rather than a brownout; restart pressure at half the budget raises
// the shared degrade flag; pressure past the budget trips the circuit
// breaker — exit 4 with a durable, parseable post-mortem snapshot.
//
// Every test forks real processes (the supervisor is exactly the code
// under test), so the worker bodies communicate back only via exit
// codes and the shared degrade page.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "robust/exit_codes.hpp"
#include "robust/failpoint.hpp"
#include "robust/supervisor/supervisor.hpp"

namespace pftk::robust {
namespace {

/// A real wait status for a child that exited with `code` or died on
/// `sig` — built by forking, because W_EXITCODE is not portable.
int wait_status_for(int code, int sig = 0) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (sig != 0) {
      ::raise(sig);
    }
    ::_exit(code);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

TEST(WorkerExitClassification, ExitCodesMapToClasses) {
  EXPECT_EQ(classify_wait_status(wait_status_for(0)).cls,
            WorkerExitClass::kClean);
  EXPECT_EQ(classify_wait_status(wait_status_for(kExitInterrupted)).cls,
            WorkerExitClass::kInterrupted);
  EXPECT_EQ(classify_wait_status(wait_status_for(kCrashExitCode)).cls,
            WorkerExitClass::kCrash);
  EXPECT_EQ(classify_wait_status(wait_status_for(1)).cls,
            WorkerExitClass::kError);
  EXPECT_EQ(classify_wait_status(wait_status_for(0, SIGSEGV)).cls,
            WorkerExitClass::kCrash);
  EXPECT_EQ(classify_wait_status(wait_status_for(0, SIGKILL)).cls,
            WorkerExitClass::kCrash);
}

TEST(WorkerExitClassification, DescribeNamesCodeAndClass) {
  const WorkerExit crash = classify_wait_status(wait_status_for(kCrashExitCode));
  EXPECT_EQ(crash.describe(), "exit 86 (crash)");
  const WorkerExit sig = classify_wait_status(wait_status_for(0, SIGKILL));
  EXPECT_TRUE(sig.signaled);
  EXPECT_EQ(sig.describe(), "signal 9 (crash)");
}

TEST(SupervisorBackoff, ExponentialAndCapped) {
  SupervisorConfig config;
  config.backoff_base = std::chrono::milliseconds(25);
  config.backoff_multiplier = 2.0;
  config.backoff_cap = std::chrono::milliseconds(200);
  EXPECT_EQ(config.backoff(1).count(), 25);
  EXPECT_EQ(config.backoff(2).count(), 50);
  EXPECT_EQ(config.backoff(3).count(), 100);
  EXPECT_EQ(config.backoff(4).count(), 200);
  EXPECT_EQ(config.backoff(10).count(), 200);  // capped, never overflows
}

TEST(SupervisorConfigValidate, RejectsNonsense) {
  SupervisorConfig config;
  config.workers = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.workers = 2;
  config.restart_budget = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.restart_budget = 4;
  config.half_open_fraction = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Supervisor, CleanWorkersRetireWithoutRestart) {
  SupervisorConfig config;
  config.workers = 3;
  Supervisor sup(std::move(config));
  const SupervisorResult result =
      sup.run([](const WorkerContext&) { return 0; });
  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_FALSE(result.gave_up);
  EXPECT_EQ(result.stats.forks, 3u);
  EXPECT_EQ(result.stats.restarts, 0u);
  EXPECT_EQ(result.stats.clean_exits, 3u);
  EXPECT_EQ(result.stats.crashes, 0u);
}

TEST(Supervisor, CrashedWorkerRestartsWithBackoffThenRetires) {
  SupervisorConfig config;
  config.workers = 1;
  config.backoff_base = std::chrono::milliseconds(20);
  Supervisor sup(std::move(config));
  const SupervisorResult result = sup.run([](const WorkerContext& ctx) {
    // First life crashes; the restarted generation retires cleanly.
    return ctx.generation == 0 ? static_cast<int>(kCrashExitCode) : 0;
  });
  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_EQ(result.stats.forks, 2u);
  EXPECT_EQ(result.stats.restarts, 1u);
  EXPECT_EQ(result.stats.crashes, 1u);
  EXPECT_EQ(result.stats.clean_exits, 1u);

  // The timeline records the scheduled backoff for the first restart.
  bool saw_restart = false;
  for (const auto& ev : result.events) {
    if (ev.kind == SupervisorEvent::Kind::kRestartScheduled) {
      saw_restart = true;
      EXPECT_DOUBLE_EQ(ev.backoff_ms, 20.0);
    }
  }
  EXPECT_TRUE(saw_restart);
}

TEST(Supervisor, SegfaultingWorkerIsARestartableCrash) {
  SupervisorConfig config;
  config.workers = 1;
  config.backoff_base = std::chrono::milliseconds(5);
  Supervisor sup(std::move(config));
  const SupervisorResult result = sup.run([](const WorkerContext& ctx) {
    if (ctx.generation == 0) {
      ::raise(SIGSEGV);
    }
    return 0;
  });
  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_EQ(result.stats.crashes, 1u);
  EXPECT_EQ(result.stats.restarts, 1u);
}

TEST(Supervisor, StalledWorkerIsKilledAndRestarted) {
  SupervisorConfig config;
  config.workers = 1;
  config.heartbeat_interval_ms = 20.0;
  config.stall_timeout_ms = 150.0;
  config.backoff_base = std::chrono::milliseconds(5);
  Supervisor sup(std::move(config));
  const SupervisorResult result = sup.run([](const WorkerContext& ctx) {
    if (ctx.generation == 0) {
      // Wedged: alive but never heartbeating. The supervisor must
      // SIGKILL this life within the stall timeout.
      std::this_thread::sleep_for(std::chrono::seconds(30));
      return 1;
    }
    ctx.heartbeat();
    return 0;
  });
  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_EQ(result.stats.stalls, 1u);
  EXPECT_EQ(result.stats.restarts, 1u);
  // A stall-kill is counted as a stall, not double-counted as a crash.
  EXPECT_EQ(result.stats.crashes, 0u);
}

TEST(Supervisor, RestartPressureRaisesTheDegradeFlag) {
  SupervisorConfig config;
  config.workers = 1;
  config.restart_budget = 8;        // half-open at >= 4 in-window restarts
  config.restart_window_s = 60.0;
  config.backoff_base = std::chrono::milliseconds(1);
  Supervisor sup(std::move(config));
  const SupervisorResult result = sup.run([](const WorkerContext& ctx) {
    if (ctx.generation < 4) {
      return static_cast<int>(kCrashExitCode);
    }
    // By the 5th life, four restarts sit in the window: the parent must
    // have raised the shared flag before forking us.
    return ctx.degraded->load() != 0 ? 0 : 1;
  });
  EXPECT_EQ(result.exit_code, kExitOk) << "worker saw degrade flag down";
  EXPECT_GE(result.stats.degrade_transitions, 1u);
  bool saw_on = false;
  for (const auto& ev : result.events) {
    saw_on |= ev.kind == SupervisorEvent::Kind::kDegradeOn;
  }
  EXPECT_TRUE(saw_on);
}

TEST(Supervisor, BreakerTripsWithExitFourAndDurablePostmortem) {
  const std::string postmortem =
      "/tmp/pftk_tsup_pm_" + std::to_string(::getpid()) + ".json";
  std::remove(postmortem.c_str());

  SupervisorConfig config;
  config.workers = 2;
  config.restart_budget = 3;
  config.restart_window_s = 60.0;
  config.backoff_base = std::chrono::milliseconds(1);
  config.postmortem_path = postmortem;
  std::uint64_t give_up_events = 0;
  config.event_hook = [&give_up_events](const SupervisorEvent& ev) {
    give_up_events += ev.kind == SupervisorEvent::Kind::kGiveUp ? 1 : 0;
  };
  Supervisor sup(std::move(config));
  const SupervisorResult result = sup.run(
      [](const WorkerContext&) { return static_cast<int>(kCrashExitCode); });

  EXPECT_EQ(result.exit_code, kExitSupervisorGaveUp);
  EXPECT_TRUE(result.gave_up);
  EXPECT_EQ(give_up_events, 1u);
  EXPECT_GT(result.stats.crashes, 3u);

  // The post-mortem is a complete single-line JSON snapshot naming the
  // schema, the reason, and the crash timeline.
  std::ifstream is(postmortem);
  ASSERT_TRUE(is) << "post-mortem file missing: " << postmortem;
  std::ostringstream body;
  body << is.rdbuf();
  const std::string text = body.str();
  EXPECT_NE(text.find("\"schema\":\"pftk-postmortem/1\""), std::string::npos);
  EXPECT_NE(text.find("restart budget exhausted"), std::string::npos);
  EXPECT_NE(text.find("\"events\":["), std::string::npos);
  EXPECT_NE(text.find("\"crash\""), std::string::npos);
  std::remove(postmortem.c_str());
}

TEST(Supervisor, StopFlagDrainsTheFleetWithInterruptedExit) {
  std::atomic<bool> stop{false};
  SupervisorConfig config;
  config.workers = 2;
  config.heartbeat_interval_ms = 10.0;
  config.stop = &stop;
  // Workers idle until SIGTERMed by the drain; they exit via default
  // SIGTERM disposition, which the drain tolerates (no restart).
  config.event_hook = [&stop](const SupervisorEvent& ev) {
    // Flip the stop flag once the whole fleet is up.
    if (ev.kind == SupervisorEvent::Kind::kStart && ev.worker == 1) {
      stop.store(true);
    }
  };
  Supervisor sup(std::move(config));
  const SupervisorResult result = sup.run([](const WorkerContext& ctx) {
    ::signal(SIGTERM, SIG_DFL);
    for (;;) {
      ctx.heartbeat();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return 0;
  });
  EXPECT_EQ(result.exit_code, kExitInterrupted);
  EXPECT_EQ(result.stats.forks, 2u);
  EXPECT_EQ(result.stats.restarts, 0u);
}

TEST(Supervisor, RestartedChildrenStartWithFailpointsDisarmed) {
  // Arm a one-shot crash in the *parent*: generation 0 inherits it and
  // crashes; generation 1 must start disarmed (the default) and survive
  // evaluating the same site.
  FailpointRegistry::instance().disarm_all();
  FailpointRegistry::instance().arm_specs(
      "serve.worker.crash:after=0:action=crash");
  SupervisorConfig config;
  config.workers = 1;
  config.backoff_base = std::chrono::milliseconds(5);
  Supervisor sup(std::move(config));
  const SupervisorResult result = sup.run([](const WorkerContext&) {
    const auto hit = failpoint("serve.worker.crash");
    if (hit.action == FailpointAction::kCrash) {
      crash_now();
    }
    return 0;
  });
  FailpointRegistry::instance().disarm_all();
  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_EQ(result.stats.crashes, 1u);
  EXPECT_EQ(result.stats.restarts, 1u);
}

}  // namespace
}  // namespace pftk::robust
