// Background-traffic sources and mechanistic congestion for a TCP flow.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/cross_traffic.hpp"
#include "sim/shared_bottleneck.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/trace_summary.hpp"

namespace pftk::sim {
namespace {

TEST(CrossTrafficSource, PoissonRateIsRespected) {
  EventQueue queue;
  CrossTrafficConfig cfg;
  cfg.rate_pps = 100.0;
  int emitted = 0;
  CrossTrafficSource src(queue, cfg, Rng(1), [&] { ++emitted; });
  src.start();
  queue.run_until(100.0);
  EXPECT_NEAR(static_cast<double>(emitted), 100.0 * 100.0, 500.0);  // ~5 sigma
}

TEST(CrossTrafficSource, DeterministicSpacing) {
  EventQueue queue;
  CrossTrafficConfig cfg;
  cfg.rate_pps = 10.0;
  cfg.poisson = false;
  int emitted = 0;
  CrossTrafficSource src(queue, cfg, Rng(2), [&] { ++emitted; });
  src.start();
  queue.run_until(10.0);
  EXPECT_EQ(emitted, 100);
}

TEST(CrossTrafficSource, OnOffModulationReducesVolume) {
  EventQueue queue;
  CrossTrafficConfig cfg;
  cfg.rate_pps = 100.0;
  cfg.on_mean_s = 1.0;
  cfg.off_mean_s = 1.0;  // ~50% duty cycle
  int emitted = 0;
  CrossTrafficSource src(queue, cfg, Rng(3), [&] { ++emitted; });
  src.start();
  queue.run_until(200.0);
  EXPECT_NEAR(static_cast<double>(emitted), 0.5 * 100.0 * 200.0, 2000.0);
}

TEST(CrossTrafficSource, StopHaltsEmission) {
  EventQueue queue;
  CrossTrafficConfig cfg;
  cfg.rate_pps = 100.0;
  int emitted = 0;
  CrossTrafficSource src(queue, cfg, Rng(4), [&] { ++emitted; });
  src.start();
  queue.run_until(1.0);
  const int at_stop = emitted;
  src.stop();
  queue.run_until(10.0);
  EXPECT_EQ(emitted, at_stop);
}

TEST(CrossTrafficSource, RejectsBadConfigs) {
  EventQueue queue;
  CrossTrafficConfig cfg;
  cfg.rate_pps = 0.0;
  EXPECT_THROW(CrossTrafficSource(queue, cfg, Rng(1), [] {}), std::invalid_argument);
  cfg.rate_pps = 1.0;
  cfg.off_mean_s = -1.0;
  EXPECT_THROW(CrossTrafficSource(queue, cfg, Rng(1), [] {}), std::invalid_argument);
  cfg.off_mean_s = 0.0;
  EXPECT_THROW(CrossTrafficSource(queue, cfg, Rng(1), nullptr), std::invalid_argument);
}

SharedBottleneckConfig tcp_with_background(double background_pps, double on_s,
                                           double off_s) {
  SharedBottleneckConfig cfg;
  cfg.rate_pps = 100.0;
  cfg.queue = DropTailSpec{15};
  cfg.bottleneck_delay = 0.02;
  cfg.seed = 9;
  FlowEndpointConfig f;
  f.sender.advertised_window = 48.0;
  f.sender.min_rto = 1.0;
  f.return_delay = 0.05;
  cfg.flows.push_back(f);
  CrossTrafficConfig bg;
  bg.rate_pps = background_pps;
  bg.on_mean_s = on_s;
  bg.off_mean_s = off_s;
  cfg.cross_traffic.push_back(bg);
  return cfg;
}

TEST(CrossTraffic, BackgroundLoadSqueezesTcp) {
  SharedBottleneck quiet(tcp_with_background(1.0, 1.0, 0.0));
  const double quiet_rate = quiet.run_for(300.0)[0].throughput;

  SharedBottleneck busy(tcp_with_background(60.0, 1.0, 0.0));
  const double busy_rate = busy.run_for(300.0)[0].throughput;

  // TCP should roughly take what the background leaves.
  EXPECT_GT(quiet_rate, 90.0);
  EXPECT_LT(busy_rate, 0.75 * quiet_rate);
  EXPECT_GT(busy_rate, 20.0);
}

TEST(CrossTraffic, BurstyBackgroundCreatesTimeoutRichTraces) {
  // On-off background bursts overflow the queue in clusters: the TCP flow
  // sees correlated losses and genuine timeout sequences — Table II
  // behaviour from mechanism rather than from a synthetic loss process.
  SharedBottleneckConfig cfg = tcp_with_background(140.0, 0.5, 3.0);
  SharedBottleneck net(cfg);
  trace::TraceRecorder rec;
  net.set_observer(0, &rec);
  net.run_for(900.0);

  const auto row = trace::summarize_trace(rec.events(), 3);
  EXPECT_GT(row.loss_indications, 20u);
  EXPECT_GT(row.timeout_fraction(), 0.2);
  EXPECT_GT(net.bottleneck_stats().dropped_queue, 0u);
  EXPECT_GT(net.cross_traffic_emitted(), 10000u);
}

}  // namespace
}  // namespace pftk::sim
