// Bounded model checker end-to-end: exhaustive enumeration with
// -j-independent deterministic state counts, visited-state pruning that
// provably cuts work, counterexamples whose replay reproduces the
// violation byte-for-byte, and the pftk-mc/1 trace format round-trip.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/trace_file.hpp"
#include "sim/connection.hpp"
#include "sim/tcp_reno_sender.hpp"

namespace pftk::mc {
namespace {

/// The documented small config (EXPERIMENTS.md "Exploration"): one flow,
/// six packets, loss branching on the first eight decisions.
ExploreConfig documented_config() { return ExploreConfig{}; }

/// A smaller tree for tests that run the explorer several times.
ExploreConfig tiny_config() {
  ExploreConfig cfg;
  cfg.packets = 4;
  cfg.loss_choices = 3;
  return cfg;
}

bool stats_equal(const ExploreStats& a, const ExploreStats& b) {
  return a.states == b.states && a.branches == b.branches &&
         a.terminals == b.terminals && a.pruned == b.pruned &&
         a.truncated == b.truncated && a.violations == b.violations;
}

TEST(Explorer, DocumentedConfigEnumeratesExactly) {
  // The golden count for the documented config. If a protocol or
  // harness change moves it, re-derive and update EXPERIMENTS.md too —
  // the point is that the enumeration is exact and reproducible.
  Explorer explorer(documented_config());
  const ExploreResult result = explorer.run();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.stats.states, 246u);
  EXPECT_EQ(result.stats.branches, 247u);
  EXPECT_EQ(result.stats.terminals, 247u);
  EXPECT_EQ(result.stats.violations, 0u);
}

TEST(Explorer, StateCountsAreDeterministicAcrossRunsAndThreads) {
  ExploreConfig cfg = tiny_config();
  const ExploreResult first = Explorer(cfg).run();
  const ExploreResult again = Explorer(cfg).run();
  ASSERT_TRUE(first.complete);
  EXPECT_TRUE(stats_equal(first.stats, again.stats));

  for (const int threads : {2, 4}) {
    ExploreConfig parallel_cfg = cfg;
    parallel_cfg.threads = threads;
    const ExploreResult parallel = Explorer(parallel_cfg).run();
    EXPECT_TRUE(parallel.complete);
    EXPECT_TRUE(stats_equal(first.stats, parallel.stats))
        << "threads=" << threads << ": states " << parallel.stats.states
        << " vs " << first.stats.states;
    EXPECT_EQ(first.jobs, parallel.jobs);
  }
}

TEST(Explorer, VisitedStatePruningCutsWorkWithoutChangingOutcomes) {
  // Two identical overlapping blackouts: the fault-order rotation is a
  // pure commuting choice (either order drops the same packet), so both
  // rotations reach the same digest at the next choice point and the
  // second subtree must be pruned.
  ExploreConfig cfg;
  cfg.packets = 4;
  cfg.loss_choices = 2;
  cfg.fault_schedule = "blackout@0+1;blackout@0+1";
  cfg.split_depth = 0;  // whole tree in one job: the prune is visible

  ExploreConfig unpruned_cfg = cfg;
  unpruned_cfg.prune_visited = false;

  const ExploreResult pruned = Explorer(cfg).run();
  const ExploreResult unpruned = Explorer(unpruned_cfg).run();
  ASSERT_TRUE(pruned.complete);
  ASSERT_TRUE(unpruned.complete);
  EXPECT_EQ(unpruned.stats.pruned, 0u);
  EXPECT_GT(pruned.stats.pruned, 0u);
  EXPECT_LT(pruned.stats.states, unpruned.stats.states);
  EXPECT_LT(pruned.stats.terminals, unpruned.stats.terminals);
  // Reduction only suppresses redundant work; neither run misreports.
  EXPECT_EQ(pruned.stats.violations, 0u);
  EXPECT_EQ(unpruned.stats.violations, 0u);
}

/// Deliberate test-only "bug": flags any branch that retransmitted.
void no_retransmission_property(const BranchContext& ctx) {
  const auto& stats = ctx.conn.sender().stats();
  if (stats.retransmissions >= 1) {
    throw PropertyViolation("test.no_rtx",
                            "branch retransmitted " +
                                std::to_string(stats.retransmissions) +
                                " segment(s)");
  }
}

TEST(Explorer, CounterexampleReplayReproducesViolationExactly) {
  ExploreConfig cfg = tiny_config();
  Explorer explorer(cfg);
  explorer.add_property("test.no_rtx", no_retransmission_property);
  const ExploreResult result = explorer.run();
  ASSERT_FALSE(result.violations.empty());
  EXPECT_GE(result.stats.violations, 1u);
  const Violation& violation = result.violations.front();
  EXPECT_EQ(violation.check, "test.no_rtx");
  ASSERT_FALSE(violation.path.empty());

  // A fresh explorer (same config + property) must replay the recorded
  // path to the same violated check and a byte-identical state digest.
  Explorer replayer(cfg);
  replayer.add_property("test.no_rtx", no_retransmission_property);
  const ReplayOutcome outcome = replayer.replay(violation.path);
  EXPECT_FALSE(outcome.diverged) << outcome.message;
  EXPECT_TRUE(outcome.violated);
  EXPECT_EQ(outcome.check, violation.check);
  EXPECT_EQ(outcome.digest.hex(), violation.digest.hex());
}

TEST(Explorer, ReplayDetectsDivergence) {
  ExploreConfig cfg = tiny_config();
  Explorer explorer(cfg);
  explorer.add_property("test.no_rtx", no_retransmission_property);
  const ExploreResult result = explorer.run();
  ASSERT_FALSE(result.violations.empty());
  const Violation& violation = result.violations.front();
  ASSERT_GE(violation.path.size(), 2u);

  // A truncated trace runs out of recorded choices mid-branch.
  std::vector<Choice> truncated(violation.path.begin(),
                                violation.path.end() - 1);
  Explorer replayer(cfg);
  const ReplayOutcome short_replay = replayer.replay(truncated);
  EXPECT_TRUE(short_replay.diverged);

  // The same trace against a different scenario either diverges or ends
  // in a different state — it must not silently "reproduce".
  ExploreConfig other = cfg;
  other.packets = cfg.packets + 1;
  Explorer mismatched(other);
  const ReplayOutcome wrong_config = mismatched.replay(violation.path);
  EXPECT_TRUE(wrong_config.diverged ||
              wrong_config.digest.hex() != violation.digest.hex());
}

TEST(Explorer, CleanBranchReplaysClean) {
  // The all-defaults branch (every packet delivered) replays without a
  // violation and with every recorded choice consumed.
  ExploreConfig cfg = tiny_config();
  Explorer explorer(cfg);
  std::vector<Choice> deliver_all(
      cfg.loss_choices, Choice{ChoiceKind::kForwardLoss, 0, 2});
  const ReplayOutcome outcome = explorer.replay(deliver_all);
  EXPECT_FALSE(outcome.diverged) << outcome.message;
  EXPECT_FALSE(outcome.violated);
  EXPECT_TRUE(outcome.check.empty());
}

TEST(Explorer, DepthBudgetTruncatesAndReportsIncomplete) {
  ExploreConfig cfg = tiny_config();
  cfg.depth = 1;
  const ExploreResult result = Explorer(cfg).run();
  EXPECT_FALSE(result.complete);
  EXPECT_GT(result.stats.truncated, 0u);
}

TEST(Explorer, MaxStatesBudgetReportsIncomplete) {
  ExploreConfig cfg = tiny_config();
  cfg.max_states = 1;
  const ExploreResult result = Explorer(cfg).run();
  EXPECT_FALSE(result.complete);
}

TEST(Explorer, StopFlagInterrupts) {
  std::atomic<bool> stop{true};
  Explorer explorer(tiny_config());
  const ExploreResult result = explorer.run(&stop);
  EXPECT_TRUE(result.interrupted);
  EXPECT_FALSE(result.complete);
}

TEST(Explorer, ConfigValidationRejectsBadFields) {
  for (const auto& mutate : std::vector<void (*)(ExploreConfig&)>{
           [](ExploreConfig& c) { c.packets = 0; },
           [](ExploreConfig& c) { c.packets = 65; },
           [](ExploreConfig& c) { c.window = 0.5; },
           [](ExploreConfig& c) { c.ack_every = 0; },
           [](ExploreConfig& c) { c.one_way_delay = 0.0; },
           [](ExploreConfig& c) { c.min_rto = 0.0; },
           [](ExploreConfig& c) { c.time_cap = 0.0; },
           [](ExploreConfig& c) { c.tie_width = 1; },
           [](ExploreConfig& c) { c.tie_width = 99; },
           [](ExploreConfig& c) { c.depth = 0; },
           [](ExploreConfig& c) { c.threads = 0; },
           [](ExploreConfig& c) { c.fault_schedule = "bogus@@"; },
       }) {
    ExploreConfig cfg;
    mutate(cfg);
    EXPECT_THROW(Explorer{cfg}, std::invalid_argument);
  }
}

TEST(TraceFile, SerializeParseRoundTrip) {
  CounterexampleTrace trace;
  trace.config.packets = 5;
  trace.config.window = 6.0;
  trace.config.ack_every = 1;
  trace.config.ack_loss = true;
  trace.config.fault_schedule = "blackout@0+1";
  trace.config.tie_width = 3;
  trace.config.tie_choices = 2;
  trace.choices = {{ChoiceKind::kForwardLoss, 1, 2},
                   {ChoiceKind::kTieBreak, 2, 3}};
  trace.check = "test.no_rtx";
  trace.message = "branch retransmitted 1 segment(s)";
  DigestBuilder builder;
  builder.add_u64(7);
  trace.digest = builder.finish();

  const std::string text = serialize_trace(trace);
  const CounterexampleTrace parsed = parse_trace(text);
  EXPECT_EQ(parsed.config.packets, trace.config.packets);
  EXPECT_EQ(parsed.config.window, trace.config.window);
  EXPECT_EQ(parsed.config.ack_every, trace.config.ack_every);
  EXPECT_EQ(parsed.config.ack_loss, trace.config.ack_loss);
  EXPECT_EQ(parsed.config.fault_schedule, trace.config.fault_schedule);
  EXPECT_EQ(parsed.config.tie_width, trace.config.tie_width);
  EXPECT_EQ(parsed.config.tie_choices, trace.config.tie_choices);
  EXPECT_EQ(parsed.choices, trace.choices);
  EXPECT_EQ(parsed.check, trace.check);
  EXPECT_EQ(parsed.message, trace.message);
  EXPECT_EQ(parsed.digest, trace.digest);
}

TEST(TraceFile, ParseRejectsMalformedInput) {
  const CounterexampleTrace trace;  // digest present, empty path
  const std::string good = serialize_trace(trace);
  EXPECT_THROW((void)parse_trace("not-a-trace\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace(good + "mystery=1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace("pftk-mc/1\n"), std::invalid_argument)
      << "a trace without a digest must not parse";
}

TEST(TraceFile, SaveLoadRoundTripsOnDisk) {
  CounterexampleTrace trace;
  trace.choices = {{ChoiceKind::kForwardLoss, 1, 2}};
  trace.check = "x";
  trace.message = "m";
  const std::string path = ::testing::TempDir() + "pftk_mc_trace_roundtrip";
  std::remove(path.c_str());
  save_trace_file(path, trace);
  const CounterexampleTrace loaded = load_trace_file(path);
  EXPECT_EQ(loaded.choices, trace.choices);
  EXPECT_EQ(loaded.check, trace.check);
  EXPECT_EQ(loaded.digest, trace.digest);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pftk::mc
