// Failpoint registry semantics: spec grammar round-trip, deterministic
// after=N one-shot firing, disarmed zero-cost pass-through, and strict
// rejection of malformed specs.
#include <gtest/gtest.h>

#include <stdexcept>

#include "robust/failpoint.hpp"

namespace pftk::robust {
namespace {

/// Every test leaves the process-wide registry clean for the next one.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarm_all(); }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }
};

TEST_F(FailpointTest, SpecParsesAndRoundTrips) {
  const auto spec =
      FailpointSpec::parse_one("journal.append:after=3:action=short_write:arg=8");
  EXPECT_EQ(spec.name, "journal.append");
  EXPECT_EQ(spec.after, 3u);
  EXPECT_EQ(spec.action, FailpointAction::kShortWrite);
  EXPECT_EQ(spec.arg, 8u);
  // describe() renders a spec parse_one() accepts back unchanged.
  const auto reparsed = FailpointSpec::parse_one(spec.describe());
  EXPECT_EQ(reparsed.name, spec.name);
  EXPECT_EQ(reparsed.after, spec.after);
  EXPECT_EQ(reparsed.action, spec.action);
  EXPECT_EQ(reparsed.arg, spec.arg);
}

TEST_F(FailpointTest, ActionNamesRoundTrip) {
  for (const FailpointAction a :
       {FailpointAction::kError, FailpointAction::kShortWrite,
        FailpointAction::kEnospc, FailpointAction::kDelay,
        FailpointAction::kCrash}) {
    EXPECT_EQ(failpoint_action_from_name(failpoint_action_name(a)), a);
  }
}

TEST_F(FailpointTest, MalformedSpecsThrow) {
  for (const char* bad :
       {"", "x:action=bogus", "x:action=off", "x:after=:action=error",
        "x:after=1:action=error:unknown=3", ":after=0:action=error",
        "x:after=nan:action=error", "x:noequals"}) {
    EXPECT_THROW((void)FailpointSpec::parse_one(bad), std::invalid_argument)
        << "spec: " << bad;
  }
}

TEST_F(FailpointTest, DefaultsAndEmptyClausesAreLenient) {
  // Omitted keys default (action=error, after=0), and empty clauses in a
  // ';'-separated list are skipped.
  FailpointRegistry::instance().arm_specs(";just_a_name;");
  EXPECT_EQ(FailpointRegistry::instance().armed_count(), 1u);
  EXPECT_EQ(failpoint("just_a_name").action, FailpointAction::kError);
}

TEST_F(FailpointTest, DisarmedEvaluationsNeverFire) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(failpoint("journal.append").fired());
  }
  EXPECT_EQ(FailpointRegistry::instance().armed_count(), 0u);
  EXPECT_EQ(FailpointRegistry::instance().fired_count("journal.append"), 0u);
}

TEST_F(FailpointTest, FiresExactlyOnceAfterNPasses) {
  FailpointRegistry::instance().arm_specs(
      "export.prom.write:after=2:action=enospc");
  // after=2: two evaluations pass untouched...
  EXPECT_FALSE(failpoint("export.prom.write").fired());
  EXPECT_FALSE(failpoint("export.prom.write").fired());
  // ...the third fires...
  const FailpointHit hit = failpoint("export.prom.write");
  EXPECT_EQ(hit.action, FailpointAction::kEnospc);
  // ...and the spec is consumed: one-shot.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(failpoint("export.prom.write").fired());
  }
  EXPECT_EQ(FailpointRegistry::instance().fired_count("export.prom.write"), 1u);
  EXPECT_EQ(FailpointRegistry::instance().armed_count(), 0u);
}

TEST_F(FailpointTest, NameSelectivity) {
  FailpointRegistry::instance().arm_specs("journal.flush:after=0:action=error");
  // A different site never trips someone else's spec.
  EXPECT_FALSE(failpoint("journal.append").fired());
  EXPECT_TRUE(failpoint("journal.flush").fired());
}

TEST_F(FailpointTest, MultipleSpecsSameNameFireInArmingOrder) {
  FailpointRegistry::instance().arm_specs(
      "j:after=0:action=error;j:after=1:action=enospc");
  // Evaluation 1 fires the first spec; the second spec's after=1 counts
  // that same evaluation, so it fires on evaluation 2.
  EXPECT_EQ(failpoint("j").action, FailpointAction::kError);
  EXPECT_EQ(failpoint("j").action, FailpointAction::kEnospc);
  EXPECT_FALSE(failpoint("j").fired());
  EXPECT_EQ(FailpointRegistry::instance().fired_count("j"), 2u);
  // Once every spec has fired the fast path re-engages, so the third
  // evaluation never reaches the registry's counters — disarmed cost
  // returns to a single atomic load.
  EXPECT_EQ(FailpointRegistry::instance().evaluation_count("j"), 2u);
}

TEST_F(FailpointTest, DelayActionIsConsumedInsideEvaluate) {
  FailpointRegistry::instance().arm_specs("d:after=0:action=delay:arg=1");
  // The sleep happens inside evaluate(); the caller sees a pass-through,
  // keeping delay byte-invisible to the persistence layer.
  EXPECT_FALSE(failpoint("d").fired());
  EXPECT_EQ(FailpointRegistry::instance().fired_count("d"), 1u);
}

TEST_F(FailpointTest, KnownSitesEnumeratesCanonicalTableSorted) {
  const auto sites = FailpointRegistry::instance().known_sites();
  ASSERT_GE(sites.size(), 8u);
  for (std::size_t i = 1; i < sites.size(); ++i) {
    EXPECT_LT(sites[i - 1].first, sites[i].first) << "not sorted at " << i;
  }
  for (const char* name :
       {"checkpoint.rename", "export.jsonl.write", "export.prom.write",
        "journal.append", "journal.flush", "mc.trace.write",
        "trace.read.line", "trace.write"}) {
    bool found = false;
    for (const auto& [site, description] : sites) {
      if (site == name) {
        found = true;
        EXPECT_FALSE(description.empty()) << name;
      }
    }
    EXPECT_TRUE(found) << "missing canonical site " << name;
  }
}

TEST_F(FailpointTest, RegisterSiteIsIdempotentFirstDescriptionWins) {
  FailpointRegistry::instance().register_site("test.site.alpha", "original");
  const std::size_t count = FailpointRegistry::instance().known_sites().size();
  FailpointRegistry::instance().register_site("test.site.alpha", "usurper");
  const auto sites = FailpointRegistry::instance().known_sites();
  EXPECT_EQ(sites.size(), count);
  for (const auto& [site, description] : sites) {
    if (site == "test.site.alpha") {
      EXPECT_EQ(description, "original");
    }
  }
  EXPECT_THROW(FailpointRegistry::instance().register_site("", "x"),
               std::invalid_argument);
}

TEST_F(FailpointTest, DisarmAllResetsState) {
  FailpointRegistry::instance().arm_specs("x:after=5:action=error");
  EXPECT_EQ(FailpointRegistry::instance().armed_count(), 1u);
  FailpointRegistry::instance().disarm_all();
  EXPECT_EQ(FailpointRegistry::instance().armed_count(), 0u);
  EXPECT_EQ(FailpointRegistry::instance().evaluation_count("x"), 0u);
  EXPECT_FALSE(failpoint("x").fired());
}

}  // namespace
}  // namespace pftk::robust
