#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/loss_model.hpp"

namespace pftk::sim {
namespace {

TEST(BernoulliLoss, ZeroNeverDrops) {
  BernoulliLoss loss(0.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(loss.should_drop(0.0, rng));
  }
}

TEST(BernoulliLoss, FrequencyMatchesP) {
  BernoulliLoss loss(0.2);
  Rng rng(1);
  int drops = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    drops += loss.should_drop(0.0, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.2, 0.01);
}

TEST(BernoulliLoss, RejectsBadP) {
  EXPECT_THROW(BernoulliLoss(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.0), std::invalid_argument);
}

TEST(BurstLoss, EpisodeKillsFollowingPacketsWithinDuration) {
  BurstLoss loss(1.0 - 1e-9, 1.0);  // first packet surely starts an episode
  Rng rng(2);
  EXPECT_TRUE(loss.should_drop(0.0, rng));   // episode starts, lasts to t=1
  EXPECT_TRUE(loss.should_drop(0.5, rng));   // inside the episode
  EXPECT_TRUE(loss.should_drop(0.999, rng)); // still inside
}

TEST(BurstLoss, PacketsAfterEpisodeSurviveWhenPIsZeroAfterReset) {
  // Construct a burst that surely starts, then verify survival after the
  // window using a zero-probability model from the same draw stream.
  BurstLoss loss(0.5, 0.2);
  Rng rng(3);
  // Find an episode start.
  double t = 0.0;
  while (!loss.should_drop(t, rng)) {
    t += 1.0;  // spaced beyond any episode
  }
  // Within the episode: always dropped regardless of randomness.
  EXPECT_TRUE(loss.should_drop(t + 0.1, rng));
  EXPECT_TRUE(loss.should_drop(t + 0.19, rng));
}

TEST(BurstLoss, ResetClearsEpisode) {
  BurstLoss loss(1.0 - 1e-9, 10.0);
  Rng rng(4);
  EXPECT_TRUE(loss.should_drop(0.0, rng));
  loss.reset();
  // After reset the old episode is forgotten; a new Bernoulli draw is
  // made (p ~ 1, so it drops, but via a fresh episode).
  BurstLoss quiet(0.0, 10.0);
  EXPECT_FALSE(quiet.should_drop(0.1, rng));
}

TEST(BurstLoss, ZeroPNeverDrops) {
  BurstLoss loss(0.0, 0.5);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(loss.should_drop(0.001 * i, rng));
  }
}

TEST(BurstLoss, RejectsBadArguments) {
  EXPECT_THROW(BurstLoss(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BurstLoss(0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(BurstLoss(-0.1, 1.0), std::invalid_argument);
}

TEST(MixedBurstLoss, PureSingleModeActsLikeBernoulli) {
  MixedBurstLoss loss(0.1, 1.0, 1.0);  // every loss is a single drop
  Rng rng(11);
  int drops = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    drops += loss.should_drop(0.001 * i, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.1, 0.01);
}

TEST(MixedBurstLoss, EpisodeModeDropsEverythingItCovers) {
  MixedBurstLoss loss(1.0 - 1e-12, 0.0, 0.5);  // always opens an episode
  Rng rng(12);
  EXPECT_TRUE(loss.should_drop(0.0, rng));
  // Whatever exponential length was drawn, t slightly after 0 is covered.
  EXPECT_TRUE(loss.should_drop(1e-6, rng));
}

TEST(MixedBurstLoss, EpisodeFloorGuaranteesMinimumCoverage) {
  MixedBurstLoss loss(1.0 - 1e-12, 0.0, 1e-9, 2.0);  // floor 2 s, tiny excess
  Rng rng(13);
  EXPECT_TRUE(loss.should_drop(0.0, rng));
  EXPECT_TRUE(loss.should_drop(1.0, rng));
  EXPECT_TRUE(loss.should_drop(1.999, rng));
}

TEST(MixedBurstLoss, SingleFractionControlsTheMix) {
  // With a 50/50 mix and widely spaced packets, roughly half the fresh
  // losses are singles (next packet survives) and half open episodes
  // (next packet, 1 ms later, is covered by the >= 0.1 s floor). The
  // fresh-loss rate is kept small so the probe packet itself is almost
  // never hit by an independent fresh loss.
  MixedBurstLoss loss(0.02, 0.5, 0.1, 0.1);
  Rng rng(14);
  int episodes = 0;
  int singles = 0;
  double t = 0.0;
  for (int i = 0; i < 400000; ++i) {
    t += 10.0;  // far beyond any episode
    if (loss.should_drop(t, rng)) {
      if (loss.should_drop(t + 0.001, rng)) {
        ++episodes;
      } else {
        ++singles;
      }
    }
  }
  ASSERT_GT(episodes + singles, 5000);
  const double single_share =
      static_cast<double>(singles) / static_cast<double>(episodes + singles);
  EXPECT_NEAR(single_share, 0.5 * 0.98, 0.05);
}

TEST(MixedBurstLoss, ResetClearsEpisode) {
  MixedBurstLoss loss(1.0 - 1e-12, 0.0, 100.0, 100.0);
  Rng rng(15);
  EXPECT_TRUE(loss.should_drop(0.0, rng));
  loss.reset();
  MixedBurstLoss quiet(0.0, 0.0, 1.0);
  EXPECT_FALSE(quiet.should_drop(1.0, rng));
}

TEST(MixedBurstLoss, RejectsBadArguments) {
  EXPECT_THROW(MixedBurstLoss(1.0, 0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(MixedBurstLoss(0.1, -0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(MixedBurstLoss(0.1, 1.1, 1.0), std::invalid_argument);
  EXPECT_THROW(MixedBurstLoss(0.1, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(MixedBurstLoss(0.1, 0.5, 1.0, -1.0), std::invalid_argument);
}

TEST(GilbertElliott, StationaryFractionFormula) {
  GilbertElliottLoss ge(0.01, 0.19);
  EXPECT_NEAR(ge.stationary_bad_fraction(), 0.05, 1e-12);
  EXPECT_NEAR(ge.average_loss_rate(), 0.05, 1e-12);
}

TEST(GilbertElliott, EmpiricalLossMatchesStationary) {
  GilbertElliottLoss ge(0.02, 0.3, 1.0);
  Rng rng(6);
  int drops = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    drops += ge.should_drop(0.0, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, ge.average_loss_rate(), 0.01);
}

TEST(GilbertElliott, LossesAreBursty) {
  // Consecutive-drop probability should exceed the marginal loss rate.
  GilbertElliottLoss ge(0.01, 0.2, 1.0);
  Rng rng(7);
  int drops = 0;
  int pairs = 0;
  bool prev = false;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const bool d = ge.should_drop(0.0, rng);
    drops += d ? 1 : 0;
    if (prev && d) {
      ++pairs;
    }
    prev = d;
  }
  const double marginal = static_cast<double>(drops) / n;
  const double conditional = static_cast<double>(pairs) / drops;
  EXPECT_GT(conditional, 2.0 * marginal);
}

TEST(GilbertElliott, ResetReturnsToGoodState) {
  GilbertElliottLoss ge(1.0, 0.0001, 1.0);  // jumps to Bad immediately
  Rng rng(8);
  EXPECT_TRUE(ge.should_drop(0.0, rng));
  ge.reset();
  GilbertElliottLoss calm(0.0, 1.0, 1.0);  // never leaves Good
  EXPECT_FALSE(calm.should_drop(0.0, rng));
}

TEST(GilbertElliott, RejectsBadArguments) {
  EXPECT_THROW(GilbertElliottLoss(1.5, 0.5), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss(0.5, -0.1), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss(0.1, 0.1, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::sim
