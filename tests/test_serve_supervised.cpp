// End-to-end chaos for the supervised worker pool (`pftk serve
// --workers N`): with a crash failpoint armed at every registered
// serve.* site, a fixed-seed load driven from outside must survive —
// the supervisor restarts every crashed worker, the client reconnects
// and keeps its ledger exact (sent == ok+busy+deadline+errors+lost),
// and the daemon drains to exit 3 with the merged fleet identity
// holding. Separately, a worker that crashes on *every* life trips the
// restart-budget breaker: exit 4 plus a durable parseable post-mortem.
//
// The daemon runs in a forked child (it is itself a multi-process
// supervisor); verdicts come back through the exit code and a status
// file the child writes after run_supervised_serve returns.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>

#include "robust/failpoint.hpp"
#include "robust/shutdown.hpp"
#include "serve/load_client.hpp"
#include "serve/supervised.hpp"

namespace pftk::serve {
namespace {

std::string unique_path(const std::string& tag, const std::string& suffix) {
  return "/tmp/pftk_tsrv_" + tag + "_" + std::to_string(::getpid()) + suffix;
}

class ServeSupervisedTest : public ::testing::Test {
 protected:
  void SetUp() override { robust::FailpointRegistry::instance().disarm_all(); }
  void TearDown() override {
    robust::FailpointRegistry::instance().disarm_all();
  }
};

struct DaemonVerdict {
  int exit_code = -1;
  std::uint64_t restarts = 0;
  std::uint64_t crashes = 0;
  bool fleet_ok = false;
  bool have_status = false;
};

/// Forks the supervised daemon with `failpoint_spec` armed, runs
/// `driver` against it in this process, SIGTERMs the daemon, and
/// returns what the child reported.
DaemonVerdict run_supervised_chaos(const std::string& tag,
                                   const std::string& failpoint_spec,
                                   const SupervisedServeConfig& base,
                                   const std::function<void()>& driver,
                                   bool send_term = true) {
  const std::string socket_path = unique_path(tag, ".sock");
  const std::string status_path = unique_path(tag, ".status");
  std::remove(socket_path.c_str());
  std::remove(status_path.c_str());

  const pid_t child = ::fork();
  EXPECT_GE(child, 0);
  if (child == 0) {
    if (!failpoint_spec.empty()) {
      robust::FailpointRegistry::instance().arm_specs(failpoint_spec);
    }
    robust::ShutdownGuard::reset();
    robust::ShutdownGuard guard;
    SupervisedServeConfig config = base;
    config.serve.socket_path = socket_path;
    config.stop = robust::ShutdownGuard::stop_flag();
    config.log_events = false;
    int code = 1;
    std::uint64_t restarts = 0;
    std::uint64_t crashes = 0;
    bool fleet_ok = false;
    try {
      const SupervisedServeReport report = run_supervised_serve(config);
      code = report.exit_code;
      restarts = report.stats.restarts;
      crashes = report.stats.crashes;
      fleet_ok = report.fleet_accounting_ok;
    } catch (...) {
      code = 99;
    }
    {
      std::ofstream os(status_path);
      os << restarts << " " << crashes << " " << (fleet_ok ? 1 : 0) << "\n";
    }
    std::_Exit(code);
  }

  // Wait for the parent-bound socket, then drive the load.
  for (int i = 0; i < 500 && ::access(socket_path.c_str(), F_OK) != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(::access(socket_path.c_str(), F_OK), 0) << "daemon never bound";
  driver();

  if (send_term) {
    // Let any restart still pending its backoff land before the drain —
    // SIGTERM cancels scheduled restarts, and a fast load can finish
    // inside the backoff window of a crash it triggered near its end.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ::kill(child, SIGTERM);
  }
  int status = 0;
  EXPECT_EQ(::waitpid(child, &status, 0), child);

  DaemonVerdict verdict;
  if (WIFEXITED(status)) {
    verdict.exit_code = WEXITSTATUS(status);
  }
  std::ifstream is(status_path);
  if (is) {
    int ok = 0;
    is >> verdict.restarts >> verdict.crashes >> ok;
    verdict.fleet_ok = ok == 1;
    verdict.have_status = static_cast<bool>(is);
  }
  std::remove(status_path.c_str());
  return verdict;
}

LoadConfig chaos_load(const std::string& socket_path) {
  LoadConfig load;
  load.socket_path = socket_path;
  load.requests = 1500;
  load.connections = 2;
  load.pipeline = 16;
  load.seed = 1998;
  return load;
}

TEST_F(ServeSupervisedTest, SurvivesCrashAtEveryWorkerFailpointSite) {
  // Every registered serve.* site, including the dedicated worker-crash
  // site, kills a worker mid-load; the pool must absorb each one. The
  // trigger count is tuned to each site's evaluation rate: accept fires
  // once per connection (a handful per run), the rest fire per request
  // or per batch.
  struct Site {
    const char* name;
    int after;
    int connections;
  };
  // Trigger counts are tuned to each site's evaluation rate:
  // serve.accept fires once per connection, so six client connections
  // over two workers pigeonhole one worker past after=2; serve.read
  // batches ~pipeline requests per syscall; the rest fire per request
  // or per batch.
  const Site kSites[] = {{"serve.accept", 2, 6},
                         {"serve.read", 20, 2},
                         {"serve.write", 120, 2},
                         {"serve.enqueue", 120, 2},
                         {"serve.worker.crash", 20, 2}};
  for (std::size_t i = 0; i < std::size(kSites); ++i) {
    const Site& site = kSites[i];
    SCOPED_TRACE(site.name);
    SupervisedServeConfig config;
    config.workers = 2;
    config.serve.shards = 1;
    const std::string tag = std::string("site_") + std::to_string(i);
    const std::string spec = std::string(site.name) +
                             ":after=" + std::to_string(site.after) +
                             ":action=crash";

    LoadReport report;
    const DaemonVerdict verdict = run_supervised_chaos(
        tag, spec, config, [&] {
          LoadConfig load = chaos_load(unique_path(tag, ".sock"));
          load.connections = site.connections;
          report = run_load(load);
        });

    // The client ledger balances to the unit across the worker death —
    // in-flight requests become `lost`, never silent holes — and the
    // stream stays protocol- and verify-clean through the reconnect.
    EXPECT_TRUE(report.accounting_ok()) << report.describe();
    EXPECT_EQ(report.sent, 1500u) << report.describe();
    EXPECT_EQ(report.protocol_errors, 0u);
    EXPECT_EQ(report.verify_failures, 0u);

    // The daemon saw the crash, restarted the worker, drained to the
    // interrupted exit, and the merged fleet identity held.
    EXPECT_EQ(verdict.exit_code, 3);
    ASSERT_TRUE(verdict.have_status);
    EXPECT_GE(verdict.crashes, 1u);
    EXPECT_GE(verdict.restarts, 1u);
    EXPECT_TRUE(verdict.fleet_ok);
  }
}

TEST_F(ServeSupervisedTest, RepeatCrashesTripBreakerWithExitFourAndPostmortem) {
  const std::string postmortem = unique_path("breaker", ".postmortem");
  std::remove(postmortem.c_str());

  SupervisedServeConfig config;
  config.workers = 2;
  config.serve.shards = 1;
  config.restart_budget = 2;
  config.restart_window_s = 60.0;
  config.postmortem_path = postmortem;
  // Restarted generations keep the armed failpoint, so every life
  // crashes on its first request and the budget must run out.
  config.disarm_restarted_failpoints = false;

  const DaemonVerdict verdict = run_supervised_chaos(
      "breaker", "serve.worker.crash:after=0:action=crash", config,
      [&] {
        // Sustained load so each restarted worker gets a request to die
        // on. The client report is irrelevant here — the daemon is
        // *supposed* to go down.
        LoadConfig load = chaos_load(unique_path("breaker", ".sock"));
        load.requests = 20000;
        try {
          (void)run_load(load);
        } catch (const std::exception&) {
          // Socket vanishes once the breaker trips; expected.
        }
      },
      /*send_term=*/false);

  EXPECT_EQ(verdict.exit_code, 4);
  ASSERT_TRUE(verdict.have_status);
  // The breaker trips on the restart that would *exceed* the budget, so
  // exactly `restart_budget` restarts were granted before giving up.
  EXPECT_GE(verdict.restarts, 2u);

  std::ifstream is(postmortem);
  ASSERT_TRUE(is) << "missing post-mortem " << postmortem;
  std::ostringstream body;
  body << is.rdbuf();
  EXPECT_NE(body.str().find("\"schema\":\"pftk-postmortem/1\""),
            std::string::npos);
  EXPECT_NE(body.str().find("restart budget exhausted"), std::string::npos);
  std::remove(postmortem.c_str());
}

TEST_F(ServeSupervisedTest, ExternalDegradeFlagServesApproximateTagged) {
  // Drive the degrade path directly through ServeConfig::degrade_flag —
  // the same signal the supervisor raises — and check every answer is
  // the approximate model tagged degraded=1, still counted served, and
  // verified by the client against its own eq-33 expectations.
  std::atomic<std::uint32_t> flag{1};
  ServeConfig config;
  config.socket_path = unique_path("degraded", ".sock");
  config.shards = 1;
  config.degrade_flag = &flag;
  Server server(config);
  server.start();

  LoadConfig load;
  load.socket_path = config.socket_path;
  load.requests = 400;
  load.connections = 2;
  load.pipeline = 8;
  const LoadReport report = run_load(load);
  server.request_stop();
  const ServeSummary summary = server.wait();

  EXPECT_EQ(report.ok, 400u);
  EXPECT_EQ(report.degraded, 400u) << "answers not tagged degraded=1";
  EXPECT_EQ(report.verify_failures, 0u)
      << "degraded answers diverged from the local eq-33 expectation";
  EXPECT_EQ(summary.degraded, 400u);
  EXPECT_EQ(summary.served, 400u);  // degraded answers are still served
  EXPECT_TRUE(summary.accounting_ok());
}

}  // namespace
}  // namespace pftk::serve
