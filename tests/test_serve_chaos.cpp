// Chaos-under-load for the serve daemon: an injected crash mid-stream
// must leave a complete, parseable durable metrics snapshot and a
// restartable socket; graceful drain mid-load answers every admitted
// request and keeps both accounting ledgers balanced; armed-but-never-
// firing failpoints change nothing; a firing enqueue failpoint turns
// into exactly one well-formed BUSY shed.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "obs/export.hpp"
#include "robust/failpoint.hpp"
#include "serve/load_client.hpp"
#include "serve/server.hpp"

namespace pftk::serve {
namespace {

std::string test_socket(const std::string& name) {
  return "/tmp/pftk_tchs_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { robust::FailpointRegistry::instance().disarm_all(); }
  void TearDown() override {
    robust::FailpointRegistry::instance().disarm_all();
  }
};

/// run_load with a few retries around the bind/listen race when the
/// server lives in another process.
LoadReport load_with_retry(const LoadConfig& config, int attempts = 20) {
  for (int i = 0;; ++i) {
    try {
      return run_load(config);
    } catch (const std::exception&) {
      if (i + 1 >= attempts) {
        throw;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

TEST_F(ServeChaosTest, CrashUnderLoadLeavesParseableDurableMetricsAndRestarts) {
  const std::string socket_path = test_socket("crash");
  const std::string metrics_path =
      "/tmp/pftk_tchs_crash_" + std::to_string(::getpid()) + ".jsonl";
  std::remove(socket_path.c_str());
  std::remove(metrics_path.c_str());

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Daemon process: crash on the 201st response write. metrics_every=50
    // guarantees several durable flushes land first.
    robust::FailpointRegistry::instance().arm_specs(
        "serve.write:after=200:action=crash");
    ServeConfig config;
    config.socket_path = socket_path;
    config.shards = 1;
    config.metrics_out = metrics_path;
    config.metrics_every = 50;
    try {
      Server server(config);
      server.start();
      for (;;) {
        std::this_thread::sleep_for(std::chrono::seconds(1));
      }
    } catch (...) {
      std::_Exit(99);
    }
  }

  for (int i = 0; i < 200 && ::access(socket_path.c_str(), F_OK) != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  LoadConfig load;
  load.socket_path = socket_path;
  load.requests = 2000;
  load.connections = 2;
  load.pipeline = 32;
  LoadReport report;
  bool load_ran = false;
  try {
    report = load_with_retry(load);
    load_ran = true;
  } catch (const std::exception&) {
    // The daemon can die before the client even connects cleanly; the
    // crash-exit and durable-snapshot assertions below still apply.
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), robust::kCrashExitCode);
  if (load_ran) {
    // Connections died mid-flight; the client ledger still balances.
    EXPECT_TRUE(report.accounting_ok()) << report.describe();
    EXPECT_GT(report.lost, 0u);
  }

  // The snapshot on disk is from *before* the crash and must be a
  // complete pftk-obs/1 bundle (atomic_write_file never leaves a torn
  // file), with at least the first flush's worth of served requests.
  const obs::ObsBundle bundle = obs::load_obs_file(metrics_path);
  EXPECT_EQ(bundle.source, "serve");
  const obs::MetricValue* served =
      bundle.metrics.find("pftk_serve_served_total");
  ASSERT_NE(served, nullptr);
  EXPECT_GE(served->value, 50.0);

  // Restart on the same path: the stale socket file is replaced and the
  // fresh daemon passes a clean fixed-seed load end to end.
  ServeConfig fresh;
  fresh.socket_path = socket_path;
  fresh.shards = 2;
  Server server(fresh);
  server.start();
  LoadConfig verify;
  verify.socket_path = socket_path;
  verify.requests = 500;
  verify.connections = 2;
  verify.pipeline = 16;
  const LoadReport clean = run_load(verify);
  server.request_stop();
  const ServeSummary summary = server.wait();
  EXPECT_EQ(clean.ok, 500u);
  EXPECT_EQ(clean.verify_failures, 0u);
  EXPECT_TRUE(summary.accounting_ok());
  std::remove(metrics_path.c_str());
}

TEST_F(ServeChaosTest, GracefulDrainMidLoadAnswersEveryAdmittedRequest) {
  ServeConfig config;
  config.socket_path = test_socket("drain");
  config.shards = 1;
  config.queue_depth = 64;
  config.slow_us = 300;  // the load cannot finish before the stop lands
  Server server(config);
  server.start();

  LoadConfig load;
  load.socket_path = config.socket_path;
  load.requests = 4000;
  load.connections = 2;
  load.pipeline = 32;
  LoadReport report;
  std::thread loader([&] { report = run_load(load); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.request_stop();
  const ServeSummary summary = server.wait();
  loader.join();

  // Both ledgers balance, and every request the server admitted was
  // answered with a response the client actually received: drain means
  // finish the work, not drop it.
  EXPECT_TRUE(report.accounting_ok()) << report.describe();
  EXPECT_TRUE(summary.accounting_ok()) << summary.describe();
  EXPECT_EQ(report.ok, summary.served);
  EXPECT_EQ(report.busy, summary.shed);
  EXPECT_EQ(report.deadline, summary.deadline_missed);
  EXPECT_GT(summary.served, 0u);
  // Requests in flight when reading stopped are the client's `lost`.
  EXPECT_GT(report.lost, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
}

TEST_F(ServeChaosTest, ClientReconnectsAcrossServerRestartWithExactLedger) {
  // A full server bounce mid-stream: server A drains while the load is
  // in flight, server B comes up on the same path. The client must ride
  // through on its capped reconnect budget — every request accounted
  // (sent == requests exactly, in-flight losses counted `lost`, never a
  // silent hole) and at least one successful reconnect recorded.
  // Before the reconnect logic, connections died on the first EOF and
  // the unsent tail simply vanished (sent < requests).
  const std::string socket_path = test_socket("bounce");

  ServeConfig first;
  first.socket_path = socket_path;
  first.shards = 1;
  first.slow_us = 200;  // the load cannot finish before the bounce
  auto server_a = std::make_unique<Server>(first);
  server_a->start();

  LoadConfig load;
  load.socket_path = socket_path;
  load.requests = 3000;
  load.connections = 2;
  load.pipeline = 16;
  LoadReport report;
  std::thread loader([&] { report = run_load(load); });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_a->request_stop();
  const ServeSummary drained = server_a->wait();
  server_a.reset();

  ServeConfig second;
  second.socket_path = socket_path;
  second.shards = 1;
  Server server_b(second);
  server_b.start();
  loader.join();
  server_b.request_stop();
  const ServeSummary resumed = server_b.wait();

  EXPECT_TRUE(report.accounting_ok()) << report.describe();
  EXPECT_EQ(report.sent, 3000u)
      << "unsent tail abandoned across the bounce: " << report.describe();
  EXPECT_GT(report.reconnects, 0u);
  EXPECT_EQ(report.protocol_errors, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  // Work really moved across the bounce: both servers served some of
  // the stream, and together they answered everything the client got.
  EXPECT_GT(drained.served, 0u);
  EXPECT_GT(resumed.served, 0u);
  EXPECT_EQ(report.ok, drained.served + resumed.served);
}

TEST_F(ServeChaosTest, ArmedButNeverFiringFailpointsChangeNothing) {
  robust::FailpointRegistry::instance().arm_specs(
      "serve.accept:after=999999:action=error;"
      "serve.read:after=999999:action=error;"
      "serve.write:after=999999:action=error;"
      "serve.enqueue:after=999999:action=error");
  ServeConfig config;
  config.socket_path = test_socket("disarmed");
  Server server(config);
  server.start();

  LoadConfig load;
  load.socket_path = config.socket_path;
  load.requests = 1000;
  load.connections = 2;
  load.pipeline = 16;
  const LoadReport report = run_load(load);
  server.request_stop();
  const ServeSummary summary = server.wait();

  // The zero-overhead contract: armed-but-quiet failpoints must not
  // shed, error, or drop a single request.
  EXPECT_EQ(report.ok, 1000u);
  EXPECT_EQ(report.busy, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_TRUE(summary.accounting_ok());
  EXPECT_EQ(summary.served, 1000u);
}

TEST_F(ServeChaosTest, EnqueueFailpointForcesExactlyOneWellFormedShed) {
  // One-shot failpoint + strictly sequential load (pipeline 1, one
  // connection) => deterministically the 6th request is force-shed as a
  // BUSY the client can parse and retry; everything else is served.
  robust::FailpointRegistry::instance().arm_specs(
      "serve.enqueue:after=5:action=error");
  ServeConfig config;
  config.socket_path = test_socket("enqueue");
  config.shards = 1;
  Server server(config);
  server.start();

  LoadConfig load;
  load.socket_path = config.socket_path;
  load.requests = 20;
  load.connections = 1;
  load.pipeline = 1;
  const LoadReport report = run_load(load);
  server.request_stop();
  const ServeSummary summary = server.wait();

  EXPECT_EQ(report.sent, 20u);
  EXPECT_EQ(report.busy, 1u);
  EXPECT_EQ(report.ok, 19u);
  EXPECT_EQ(report.protocol_errors, 0u);
  EXPECT_EQ(summary.shed, 1u);
  EXPECT_EQ(summary.served, 19u);
  EXPECT_TRUE(summary.accounting_ok());
}

}  // namespace
}  // namespace pftk::serve
