#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "exp/path_profile.hpp"

namespace pftk::exp {
namespace {

TEST(PathProfile, CatalogueHasTwentyFourPairs) {
  const auto profiles = table2_profiles();
  EXPECT_EQ(profiles.size(), 24u);
  std::set<std::string> labels;
  for (const PathProfile& p : profiles) {
    labels.insert(p.label());
  }
  EXPECT_EQ(labels.size(), 24u);  // all distinct
}

TEST(PathProfile, SendersMatchTableOne) {
  // The paper's senders: manic (Irix), void (Linux), babel, pif.
  std::set<std::string> senders;
  for (const PathProfile& p : table2_profiles()) {
    senders.insert(p.sender);
  }
  EXPECT_EQ(senders, (std::set<std::string>{"manic", "void", "babel", "pif"}));
}

TEST(PathProfile, FlavorQuirksFollowSectionFour) {
  for (const PathProfile& p : table2_profiles()) {
    if (p.sender == "void") {
      EXPECT_EQ(p.flavor, OsFlavor::kLinux);
      EXPECT_EQ(p.dupack_threshold(), 2);  // Linux TD after 2 dup-ACKs
    }
    if (p.sender == "manic") {
      EXPECT_EQ(p.flavor, OsFlavor::kIrix);
      EXPECT_EQ(p.max_backoff_exponent(), 5);  // Irix caps at 2^5
    }
    if (p.sender == "babel" || p.sender == "pif") {
      EXPECT_EQ(p.dupack_threshold(), 3);
      EXPECT_EQ(p.max_backoff_exponent(), 6);
    }
  }
}

TEST(PathProfile, ParameterRangesSpanTableTwo) {
  for (const PathProfile& p : table2_profiles()) {
    EXPECT_GT(p.nominal_rtt(), 0.1) << p.label();
    EXPECT_LT(p.nominal_rtt(), 0.6) << p.label();
    EXPECT_GE(p.min_rto, 0.3) << p.label();
    EXPECT_LE(p.min_rto, 7.5) << p.label();
    EXPECT_GE(p.advertised_window, 6.0) << p.label();
    EXPECT_LE(p.advertised_window, 48.0) << p.label();
    EXPECT_GT(p.loss_p, 0.0) << p.label();
    EXPECT_LT(p.loss_p, 0.2) << p.label();
  }
}

TEST(PathProfile, Figure7WindowsMatchPaper) {
  EXPECT_DOUBLE_EQ(profile_by_label("manic", "baskerville").advertised_window, 6.0);
  EXPECT_DOUBLE_EQ(profile_by_label("pif", "imagine").advertised_window, 8.0);
  EXPECT_DOUBLE_EQ(profile_by_label("pif", "manic").advertised_window, 33.0);
  EXPECT_DOUBLE_EQ(profile_by_label("void", "alps").advertised_window, 48.0);
  EXPECT_DOUBLE_EQ(profile_by_label("void", "tove").advertised_window, 8.0);
}

TEST(PathProfile, LookupThrowsForUnknownPair) {
  EXPECT_THROW(profile_by_label("nobody", "nowhere"), std::invalid_argument);
}

TEST(PathProfile, ConnectionConfigReflectsProfile) {
  const PathProfile p = profile_by_label("void", "tove");
  const sim::ConnectionConfig cfg = make_connection_config(p, 42);
  EXPECT_EQ(cfg.sender.dupack_threshold, 2);
  EXPECT_DOUBLE_EQ(cfg.sender.advertised_window, 8.0);
  EXPECT_DOUBLE_EQ(cfg.forward_link.propagation_delay, p.one_way_delay);
  EXPECT_EQ(cfg.seed, 42u);
  ASSERT_TRUE(std::holds_alternative<sim::MixedBurstLossSpec>(cfg.forward_loss));
  const auto& spec = std::get<sim::MixedBurstLossSpec>(cfg.forward_loss);
  EXPECT_DOUBLE_EQ(spec.p, p.loss_p);
  EXPECT_DOUBLE_EQ(spec.single_fraction, p.single_loss_fraction);
  EXPECT_DOUBLE_EQ(spec.episode_mean, p.episode_mean_s);
  EXPECT_DOUBLE_EQ(spec.episode_min, kEpisodeFloorRttMultiple * p.nominal_rtt());
  EXPECT_EQ(cfg.receiver.ack_every, 2);  // b = 2 everywhere
}

TEST(PathProfile, BernoulliSelectedWhenEpisodeMeanZero) {
  PathProfile p = profile_by_label("manic", "alps");
  p.episode_mean_s = 0.0;
  const sim::ConnectionConfig cfg = make_connection_config(p, 1);
  EXPECT_TRUE(std::holds_alternative<sim::BernoulliLossSpec>(cfg.forward_loss));
}

TEST(PathProfile, ModemProfileMatchesFigureEleven) {
  const PathProfile p = modem_profile();
  EXPECT_DOUBLE_EQ(p.advertised_window, 22.0);  // Fig. 11: Wm = 22
  const sim::ConnectionConfig cfg = make_modem_connection_config(p, 3);
  EXPECT_GT(cfg.forward_link.rate_pps, 0.0);
  EXPECT_TRUE(std::holds_alternative<sim::DropTailSpec>(cfg.forward_queue));
  EXPECT_TRUE(std::holds_alternative<sim::BernoulliLossSpec>(cfg.forward_loss));
  // The queue must be smaller than the window, or it never overflows.
  EXPECT_LT(static_cast<double>(std::get<sim::DropTailSpec>(cfg.forward_queue).capacity),
            p.advertised_window);
}

}  // namespace
}  // namespace pftk::exp
