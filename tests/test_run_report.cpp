// RunReport::merge folds batch reports deterministically: counters sum,
// fault stats add, and the right-hand side's failures/read reports/spans
// land after ours in their original order. Reports from different obs
// schema generations refuse to merge.
#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/run_report.hpp"

namespace pftk::exp {
namespace {

TEST(RunReport, MergeSumsCountersAndFaultStats) {
  RunReport a;
  a.record_success();
  a.record_success();
  a.forward_faults.offered = 100;
  a.forward_faults.dropped_blackout = 5;
  a.reverse_faults.offered = 50;

  RunReport b;
  b.record_success();
  b.record_failure("c->d/s2", "watchdog: stall");
  b.forward_faults.offered = 10;
  b.forward_faults.dropped_loss = 3;
  b.reverse_faults.delayed = 2;

  a.merge(b);
  EXPECT_EQ(a.attempted, 4u);
  EXPECT_EQ(a.succeeded, 3u);
  EXPECT_EQ(a.forward_faults.offered, 110u);
  EXPECT_EQ(a.forward_faults.dropped_blackout, 5u);
  EXPECT_EQ(a.forward_faults.dropped_loss, 3u);
  EXPECT_EQ(a.reverse_faults.offered, 50u);
  EXPECT_EQ(a.reverse_faults.delayed, 2u);
  EXPECT_FALSE(a.all_ok());
}

TEST(RunReport, MergeAppendsFailuresInStableOrder) {
  RunReport a;
  a.record_failure("first", "e1");
  RunReport b;
  b.record_failure("second", "e2");
  b.record_failure("third", "e3");

  a.merge(b);
  ASSERT_EQ(a.failures.size(), 3u);
  EXPECT_EQ(a.failures[0].label, "first");
  EXPECT_EQ(a.failures[1].label, "second");
  EXPECT_EQ(a.failures[2].label, "third");
}

TEST(RunReport, MergeAppendsReadReports) {
  RunReport a;
  trace::TraceReadReport ra;
  ra.events_parsed = 10;
  a.read_reports.push_back(ra);

  RunReport b;
  trace::TraceReadReport rb;
  rb.events_parsed = 20;
  rb.truncated = true;
  b.read_reports.push_back(rb);

  a.merge(b);
  ASSERT_EQ(a.read_reports.size(), 2u);
  EXPECT_EQ(a.read_reports[0].events_parsed, 10u);
  EXPECT_EQ(a.read_reports[1].events_parsed, 20u);
  EXPECT_TRUE(a.read_reports[1].truncated);
}

TEST(RunReport, MergeIsChainableAndEmptyMergeIsIdentity) {
  RunReport a;
  a.record_success();
  RunReport b;
  b.record_success();
  RunReport empty;
  a.merge(b).merge(empty);
  EXPECT_EQ(a.attempted, 2u);
  EXPECT_EQ(a.succeeded, 2u);
  EXPECT_TRUE(a.all_ok());
}

/// A report carrying one named span and one counter metric.
RunReport report_with_obs(const std::string& span_name, double counter_value) {
  RunReport report;
  report.record_success();
  obs::SpanRecord span;
  span.name = span_name;
  span.outcome = "ok";
  span.attempts = 1;
  span.total_seconds = 0.5;
  report.spans.push_back(span);
  obs::MetricsRegistry registry;
  const obs::MetricId runs = registry.counter("pftk_runs_total", "runs");
  registry.freeze(1);
  registry.shard(0).add(runs, counter_value);
  report.metrics = registry.snapshot();
  return report;
}

TEST(RunReport, MergeAppendsSpansAndMergesMetricsByName) {
  RunReport a = report_with_obs("a->b/s1", 3.0);
  const RunReport b = report_with_obs("c->d/s2", 4.0);
  a.merge(b);
  ASSERT_EQ(a.spans.size(), 2u);
  EXPECT_EQ(a.spans[0].name, "a->b/s1");
  EXPECT_EQ(a.spans[1].name, "c->d/s2");
  const obs::MetricValue* runs = a.metrics.find("pftk_runs_total");
  ASSERT_NE(runs, nullptr);
  EXPECT_DOUBLE_EQ(runs->value, 7.0);  // merged by name, not appended
  EXPECT_EQ(a.metrics.metrics.size(), 1u);
}

TEST(RunReport, SelfMergeDoublesEveryAdditiveField) {
  RunReport a = report_with_obs("a->b/s1", 3.0);
  a.record_failure("c->d/s2", "boom");
  a.merge(a);  // must copy internally, not self-insert
  EXPECT_EQ(a.attempted, 4u);
  EXPECT_EQ(a.succeeded, 2u);
  EXPECT_EQ(a.failures.size(), 2u);
  EXPECT_EQ(a.spans.size(), 2u);
  EXPECT_DOUBLE_EQ(a.metrics.find("pftk_runs_total")->value, 6.0);
}

TEST(RunReport, RefusesToMergeAcrossObsSchemaGenerations) {
  RunReport a;
  RunReport future;
  future.obs_schema = "pftk-obs/999";
  EXPECT_THROW(a.merge(future), std::invalid_argument);
  // The failed merge must not have corrupted the target.
  EXPECT_EQ(a.attempted, 0u);
  EXPECT_EQ(a.obs_schema, obs::kObsSchema);
}

}  // namespace
}  // namespace pftk::exp
