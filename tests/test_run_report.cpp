// RunReport::merge folds batch reports deterministically: counters sum,
// fault stats add, and the right-hand side's failures/read reports land
// after ours in their original order.
#include <gtest/gtest.h>

#include "exp/run_report.hpp"

namespace pftk::exp {
namespace {

TEST(RunReport, MergeSumsCountersAndFaultStats) {
  RunReport a;
  a.record_success();
  a.record_success();
  a.forward_faults.offered = 100;
  a.forward_faults.dropped_blackout = 5;
  a.reverse_faults.offered = 50;

  RunReport b;
  b.record_success();
  b.record_failure("c->d/s2", "watchdog: stall");
  b.forward_faults.offered = 10;
  b.forward_faults.dropped_loss = 3;
  b.reverse_faults.delayed = 2;

  a.merge(b);
  EXPECT_EQ(a.attempted, 4u);
  EXPECT_EQ(a.succeeded, 3u);
  EXPECT_EQ(a.forward_faults.offered, 110u);
  EXPECT_EQ(a.forward_faults.dropped_blackout, 5u);
  EXPECT_EQ(a.forward_faults.dropped_loss, 3u);
  EXPECT_EQ(a.reverse_faults.offered, 50u);
  EXPECT_EQ(a.reverse_faults.delayed, 2u);
  EXPECT_FALSE(a.all_ok());
}

TEST(RunReport, MergeAppendsFailuresInStableOrder) {
  RunReport a;
  a.record_failure("first", "e1");
  RunReport b;
  b.record_failure("second", "e2");
  b.record_failure("third", "e3");

  a.merge(b);
  ASSERT_EQ(a.failures.size(), 3u);
  EXPECT_EQ(a.failures[0].label, "first");
  EXPECT_EQ(a.failures[1].label, "second");
  EXPECT_EQ(a.failures[2].label, "third");
}

TEST(RunReport, MergeAppendsReadReports) {
  RunReport a;
  trace::TraceReadReport ra;
  ra.events_parsed = 10;
  a.read_reports.push_back(ra);

  RunReport b;
  trace::TraceReadReport rb;
  rb.events_parsed = 20;
  rb.truncated = true;
  b.read_reports.push_back(rb);

  a.merge(b);
  ASSERT_EQ(a.read_reports.size(), 2u);
  EXPECT_EQ(a.read_reports[0].events_parsed, 10u);
  EXPECT_EQ(a.read_reports[1].events_parsed, 20u);
  EXPECT_TRUE(a.read_reports[1].truncated);
}

TEST(RunReport, MergeIsChainableAndEmptyMergeIsIdentity) {
  RunReport a;
  a.record_success();
  RunReport b;
  b.record_success();
  RunReport empty;
  a.merge(b).merge(empty);
  EXPECT_EQ(a.attempted, 2u);
  EXPECT_EQ(a.succeeded, 2u);
  EXPECT_TRUE(a.all_ok());
}

}  // namespace
}  // namespace pftk::exp
