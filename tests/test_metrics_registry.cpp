// The metrics registry's contract: inclusive Prometheus-style bucket
// edges, NaN/inf rejection consistent with the stats-layer quantile
// guards, and a snapshot that is a deterministic function of what was
// recorded regardless of how many shards the work was spread over.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pftk::obs {
namespace {

TEST(MetricsRegistry, CountersAndGaugesRoundTripThroughSnapshot) {
  MetricsRegistry registry;
  const MetricId hits = registry.counter("hits_total", "hits");
  const MetricId depth = registry.gauge("depth", "high-water mark");
  registry.freeze(1);

  auto& shard = registry.shard(0);
  shard.add(hits);
  shard.add(hits, 4.0);
  shard.add(hits, -3.0);  // negative deltas are ignored, not subtracted
  shard.set(depth, 7.0);
  shard.set(depth, 5.0);  // last write wins within one shard

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  const MetricValue* h = snap.find("hits_total");
  const MetricValue* d = snap.find("depth");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(h->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(h->value, 5.0);
  EXPECT_EQ(d->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(d->value, 5.0);
  EXPECT_EQ(snap.find("absent"), nullptr);
}

TEST(MetricsRegistry, HistogramBucketEdgesAreInclusive) {
  MetricsRegistry registry;
  const MetricId lat = registry.histogram("lat_seconds", "latency", {1.0, 2.0});
  registry.freeze(1);
  auto& shard = registry.shard(0);

  shard.observe(lat, 0.5);  // below the first edge
  shard.observe(lat, 1.0);  // exactly on an edge: lands in that bucket (le)
  shard.observe(lat, std::nextafter(1.0, 2.0));  // just past the edge
  shard.observe(lat, 2.0);  // exactly on the last finite edge
  shard.observe(lat, 2.5);  // overflows into the implicit +inf bucket

  const MetricsSnapshot snap = registry.snapshot();
  const MetricValue* h = snap.find("lat_seconds");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->bounds.size(), 2u);
  ASSERT_EQ(h->buckets.size(), 3u);  // two finite edges + the +inf bucket
  EXPECT_EQ(h->buckets[0], 2u);      // 0.5 and 1.0
  EXPECT_EQ(h->buckets[1], 2u);      // 1.0+eps and 2.0
  EXPECT_EQ(h->buckets[2], 1u);      // 2.5
  EXPECT_EQ(h->count, 5u);
  EXPECT_DOUBLE_EQ(h->sum, 0.5 + 1.0 + std::nextafter(1.0, 2.0) + 2.0 + 2.5);
  EXPECT_EQ(h->rejected, 0u);
}

TEST(MetricsRegistry, HistogramRejectsNonFiniteObservations) {
  MetricsRegistry registry;
  const MetricId lat = registry.histogram("lat_seconds", "latency", {1.0});
  registry.freeze(1);
  auto& shard = registry.shard(0);

  shard.observe(lat, std::numeric_limits<double>::quiet_NaN());
  shard.observe(lat, std::numeric_limits<double>::infinity());
  shard.observe(lat, -std::numeric_limits<double>::infinity());
  shard.observe(lat, 0.5);

  const MetricsSnapshot snap = registry.snapshot();
  const MetricValue* h = snap.find("lat_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->rejected, 3u);  // counted, never silently dropped
  EXPECT_EQ(h->count, 1u);     // only the finite sample binned
  EXPECT_DOUBLE_EQ(h->sum, 0.5);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 0u);
}

TEST(MetricsRegistry, RejectsBadDefinitionsAndLateRegistration) {
  MetricsRegistry registry;
  (void)registry.counter("dup", "first");
  EXPECT_THROW((void)registry.counter("dup", "again"), std::invalid_argument);
  EXPECT_THROW((void)registry.counter("", "anonymous"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("h", "unsorted", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)registry.histogram(
                   "h2", "inf edge", {std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
  registry.freeze(2);
  EXPECT_THROW((void)registry.counter("late", "post-freeze"), std::logic_error);
  EXPECT_THROW(registry.freeze(2), std::logic_error);
  EXPECT_THROW((void)registry.shard(2), std::out_of_range);
}

/// Builds a registry with one counter, one gauge and one histogram,
/// spreads `samples` deterministic recordings round-robin across
/// `shards`, and returns the merged snapshot.
MetricsSnapshot sharded_snapshot(std::size_t shards) {
  MetricsRegistry registry;
  const MetricId n = registry.counter("n_total", "count");
  const MetricId peak = registry.gauge("peak", "max");
  const MetricId lat = registry.histogram("lat_seconds", "latency", {0.25, 0.5, 1.0});
  registry.freeze(shards);
  constexpr int kSamples = 1000;
  for (int i = 0; i < kSamples; ++i) {
    auto& shard = registry.shard(static_cast<std::size_t>(i) % shards);
    shard.add(n);
    shard.set(peak, static_cast<double>(i % 97));
    shard.observe(lat, static_cast<double>(i % 13) / 10.0);
  }
  return registry.snapshot();
}

TEST(MetricsRegistry, SnapshotIsIndependentOfShardCount) {
  // Counters/buckets sum and gauges take the max, so the merged snapshot
  // must not depend on which worker recorded what.
  const MetricsSnapshot one = sharded_snapshot(1);
  for (const std::size_t shards : {2u, 3u, 8u}) {
    const MetricsSnapshot many = sharded_snapshot(shards);
    ASSERT_EQ(many.metrics.size(), one.metrics.size());
    for (std::size_t i = 0; i < one.metrics.size(); ++i) {
      const MetricValue& a = one.metrics[i];
      const MetricValue& b = many.metrics[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_DOUBLE_EQ(a.value, b.value) << a.name << " @ " << shards;
      EXPECT_EQ(a.buckets, b.buckets) << a.name << " @ " << shards;
      EXPECT_EQ(a.count, b.count);
      // The sum regroups float additions across shards; allow rounding.
      EXPECT_NEAR(a.sum, b.sum, 1e-9);
    }
  }
}

TEST(MetricsSnapshot, MergeSumsCountersMaxesGaugesAndAppendsUnknown) {
  MetricsRegistry ra;
  const MetricId ca = ra.counter("c_total", "c");
  const MetricId ga = ra.gauge("g", "g");
  ra.freeze(1);
  ra.shard(0).add(ca, 3.0);
  ra.shard(0).set(ga, 10.0);
  MetricsSnapshot a = ra.snapshot();

  MetricsRegistry rb;
  const MetricId cb = rb.counter("c_total", "c");
  const MetricId gb = rb.gauge("g", "g");
  const MetricId extra = rb.counter("only_b_total", "b-only");
  rb.freeze(1);
  rb.shard(0).add(cb, 4.0);
  rb.shard(0).set(gb, 2.0);
  rb.shard(0).add(extra, 1.0);

  a.merge(rb.snapshot());
  EXPECT_DOUBLE_EQ(a.find("c_total")->value, 7.0);
  EXPECT_DOUBLE_EQ(a.find("g")->value, 10.0);  // max, not sum
  ASSERT_NE(a.find("only_b_total"), nullptr);
  EXPECT_DOUBLE_EQ(a.find("only_b_total")->value, 1.0);
}

TEST(MetricsSnapshot, SelfMergeDoublesAndKindMismatchThrows) {
  MetricsRegistry ra;
  (void)ra.counter("x", "as counter");
  ra.freeze(1);
  ra.shard(0).add(MetricId{0}, 2.0);
  MetricsSnapshot a = ra.snapshot();
  a.merge(a);
  EXPECT_DOUBLE_EQ(a.find("x")->value, 4.0);

  MetricsRegistry rb;
  (void)rb.gauge("x", "as gauge");
  rb.freeze(1);
  EXPECT_THROW(a.merge(rb.snapshot()), std::invalid_argument);
}

TEST(ScopedTimer, RecordsOneNonNegativeObservation) {
  MetricsRegistry registry;
  const MetricId lat = registry.histogram("t_seconds", "timer", {0.5, 5.0});
  registry.freeze(1);
  {
    ScopedTimer timer(registry.shard(0), lat);
  }
  const MetricsSnapshot snap = registry.snapshot();
  const MetricValue* h = snap.find("t_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_GE(h->sum, 0.0);
  EXPECT_EQ(h->rejected, 0u);
}

TEST(ScopedTimer, StopIsIdempotent) {
  MetricsRegistry registry;
  const MetricId lat = registry.histogram("t_seconds", "timer", {5.0});
  registry.freeze(1);
  ScopedTimer timer(registry.shard(0), lat);
  timer.stop();
  timer.stop();  // destructor must not double-record either
  const MetricsSnapshot snap = registry.snapshot();
  const MetricValue* h = snap.find("t_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

}  // namespace
}  // namespace pftk::obs
