// Durable I/O primitives: appender bytes/fsync cadence, injected faults
// (short write, disk full) surfacing as IoError, and atomic_write_file's
// never-a-partial-target guarantee — including a failed rename step.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "robust/durable_file.hpp"
#include "robust/failpoint.hpp"

namespace pftk::robust {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "pftk_durable_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

class DurableFileTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarm_all(); }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }
};

TEST_F(DurableFileTest, AppenderWritesLinesAndCountsBytes) {
  const std::string path = temp_path("append.jsonl");
  std::remove(path.c_str());
  DurableAppender::Options options;
  options.truncate = true;
  DurableAppender appender(path, options);
  appender.append_line("alpha");
  appender.append_line("beta");
  appender.close();
  EXPECT_EQ(read_file(path), "alpha\nbeta\n");
  EXPECT_EQ(appender.lines_written(), 2u);
  EXPECT_EQ(appender.bytes_written(), 11u);
  // Default cadence fsync_every=1: one fsync per line, none extra at close.
  EXPECT_EQ(appender.fsyncs(), 2u);
  EXPECT_FALSE(appender.is_open());
}

TEST_F(DurableFileTest, AppendModeExtendsExistingFile) {
  const std::string path = temp_path("extend.jsonl");
  std::remove(path.c_str());
  {
    DurableAppender::Options options;
    options.truncate = true;
    DurableAppender appender(path, options);
    appender.append_line("first");
    appender.close();
  }
  {
    DurableAppender appender(path, DurableAppender::Options{});
    appender.append_line("second");
    appender.close();
  }
  EXPECT_EQ(read_file(path), "first\nsecond\n");
}

TEST_F(DurableFileTest, FsyncCadenceBatchesSyncs) {
  const std::string path = temp_path("cadence.jsonl");
  std::remove(path.c_str());
  DurableAppender::Options options;
  options.truncate = true;
  options.fsync_every = 3;
  DurableAppender appender(path, options);
  for (int i = 0; i < 7; ++i) {
    appender.append_line("line " + std::to_string(i));
  }
  EXPECT_EQ(appender.fsyncs(), 2u);  // after lines 3 and 6
  appender.close();                  // the 7th line is still pending
  EXPECT_EQ(appender.fsyncs(), 3u);
}

TEST_F(DurableFileTest, FsyncZeroSyncsOnlyAtClose) {
  const std::string path = temp_path("cadence0.jsonl");
  std::remove(path.c_str());
  DurableAppender::Options options;
  options.truncate = true;
  options.fsync_every = 0;
  DurableAppender appender(path, options);
  appender.append_line("a");
  appender.append_line("b");
  EXPECT_EQ(appender.fsyncs(), 0u);
  appender.close();
  EXPECT_EQ(appender.fsyncs(), 1u);
}

TEST_F(DurableFileTest, FsyncZeroExplicitSyncMakesCloseSyncFree) {
  // With --fsync-every 0 the *caller* owns durability points: an
  // explicit sync() is the flush, and a close() with nothing pending
  // must not add another fsync.
  const std::string path = temp_path("cadence0_sync.jsonl");
  std::remove(path.c_str());
  DurableAppender::Options options;
  options.truncate = true;
  options.fsync_every = 0;
  DurableAppender appender(path, options);
  appender.append_line("a");
  appender.append_line("b");
  appender.sync();
  EXPECT_EQ(appender.fsyncs(), 1u);
  appender.close();
  EXPECT_EQ(appender.fsyncs(), 1u);  // nothing pending: no extra sync
  EXPECT_EQ(read_file(path), "a\nb\n");
}

TEST_F(DurableFileTest, FsyncZeroDestructorStillLandsTheBytes) {
  // The destructor is best-effort (no checked fsync), but appends are
  // write-through — every byte reached the kernel before the fd closed,
  // so an un-close()d appender never loses *content*, only the
  // durability guarantee close() would have checked.
  const std::string path = temp_path("cadence0_dtor.jsonl");
  std::remove(path.c_str());
  {
    DurableAppender::Options options;
    options.truncate = true;
    options.fsync_every = 0;
    DurableAppender appender(path, options);
    appender.append_line("survives");
    appender.append_line("the destructor");
    EXPECT_EQ(appender.fsyncs(), 0u);
  }
  EXPECT_EQ(read_file(path), "survives\nthe destructor\n");
}

TEST_F(DurableFileTest, CadenceBoundaryLineCarriesItsOwnSync) {
  // fsync_every=3: exactly 3 lines sync inside the 3rd append, so a
  // close() right at the boundary has nothing pending and adds none.
  const std::string path = temp_path("cadence_exact.jsonl");
  std::remove(path.c_str());
  DurableAppender::Options options;
  options.truncate = true;
  options.fsync_every = 3;
  DurableAppender appender(path, options);
  appender.append_line("one");
  appender.append_line("two");
  EXPECT_EQ(appender.fsyncs(), 0u);
  appender.append_line("three");
  EXPECT_EQ(appender.fsyncs(), 1u);
  appender.close();
  EXPECT_EQ(appender.fsyncs(), 1u);
}

TEST_F(DurableFileTest, ShortWriteAtCadenceBoundaryNeverReachesTheSync) {
  // The boundary line itself tears: the two complete records before it
  // survive, the torn tail holds only the injected byte count, and the
  // boundary fsync never happened (fsyncs stays 0) — the exact shape a
  // crash-at-cadence leaves for the replay layer.
  const std::string path = temp_path("cadence_torn.jsonl");
  std::remove(path.c_str());
  FailpointRegistry::instance().arm_specs(
      "journal.append:after=2:action=short_write:arg=2");
  DurableAppender::Options options;
  options.truncate = true;
  options.fsync_every = 3;
  DurableAppender appender(path, options);
  appender.append_line("one");
  appender.append_line("two");
  EXPECT_THROW(appender.append_line("three"), IoError);
  EXPECT_EQ(read_file(path), "one\ntwo\nth");
  EXPECT_EQ(appender.fsyncs(), 0u);
  EXPECT_FALSE(appender.is_open());

  // Append mode recovers past the torn tail without touching it.
  DurableAppender resumed(path, DurableAppender::Options{});
  resumed.append_line("resumed");
  resumed.close();
  EXPECT_EQ(read_file(path), "one\ntwo\nthresumed\n");
}

TEST_F(DurableFileTest, FlushFailureAtCadenceBoundarySurfacesOnTheBoundaryLine) {
  // The boundary line's bytes land, but its cadence sync fails: the
  // error surfaces on that append (not silently at close) and the
  // appender refuses further writes.
  const std::string path = temp_path("cadence_flusherr.jsonl");
  std::remove(path.c_str());
  FailpointRegistry::instance().arm_specs("journal.flush:after=0:action=error");
  DurableAppender::Options options;
  options.truncate = true;
  options.fsync_every = 3;
  DurableAppender appender(path, options);
  appender.append_line("one");
  appender.append_line("two");
  EXPECT_THROW(appender.append_line("three"), IoError);
  EXPECT_EQ(read_file(path), "one\ntwo\nthree\n");  // bytes written, not durable
  EXPECT_EQ(appender.fsyncs(), 0u);
  EXPECT_FALSE(appender.is_open());
}

TEST_F(DurableFileTest, OpenFailureThrowsIoError) {
  EXPECT_THROW(DurableAppender("/nonexistent-dir/x.jsonl",
                               DurableAppender::Options{}),
               IoError);
}

TEST_F(DurableFileTest, InjectedShortWriteLeavesTornTailAndCloses) {
  const std::string path = temp_path("torn.jsonl");
  std::remove(path.c_str());
  FailpointRegistry::instance().arm_specs(
      "journal.append:after=1:action=short_write:arg=4");
  DurableAppender::Options options;
  options.truncate = true;
  DurableAppender appender(path, options);
  appender.append_line("complete record");
  EXPECT_THROW(appender.append_line("truncated record"), IoError);
  // Exactly 4 bytes of the second record reached the file; the appender
  // closed itself so no further writes can silently succeed.
  EXPECT_EQ(read_file(path), "complete record\ntrun");
  EXPECT_FALSE(appender.is_open());
  EXPECT_THROW(appender.append_line("after failure"), IoError);
}

TEST_F(DurableFileTest, InjectedEnospcIsFlaggedDiskFull) {
  const std::string path = temp_path("enospc.jsonl");
  std::remove(path.c_str());
  FailpointRegistry::instance().arm_specs("journal.append:after=0:action=enospc");
  DurableAppender::Options options;
  options.truncate = true;
  DurableAppender appender(path, options);
  try {
    appender.append_line("never lands");
    FAIL() << "expected IoError";
  } catch (const IoError& ex) {
    EXPECT_TRUE(ex.disk_full());
  }
  EXPECT_EQ(read_file(path), "");
}

TEST_F(DurableFileTest, InjectedFlushErrorSurfaces) {
  const std::string path = temp_path("flusherr.jsonl");
  std::remove(path.c_str());
  FailpointRegistry::instance().arm_specs("journal.flush:after=0:action=error");
  DurableAppender::Options options;
  options.truncate = true;
  DurableAppender appender(path, options);
  EXPECT_THROW(appender.append_line("record"), IoError);  // cadence=1 syncs
  EXPECT_FALSE(appender.is_open());
}

TEST_F(DurableFileTest, AtomicWriteReplacesContentDurably) {
  const std::string path = temp_path("atomic.txt");
  std::remove(path.c_str());
  atomic_write_file(path, "version 1\n", "export.jsonl.write");
  EXPECT_EQ(read_file(path), "version 1\n");
  atomic_write_file(path, "version 2\n", "export.jsonl.write");
  EXPECT_EQ(read_file(path), "version 2\n");
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST_F(DurableFileTest, AtomicWriteShortWriteLeavesTargetUntouched) {
  const std::string path = temp_path("atomic_short.txt");
  std::remove(path.c_str());
  atomic_write_file(path, "old content\n", "export.prom.write");
  FailpointRegistry::instance().arm_specs(
      "export.prom.write:after=0:action=short_write:arg=3");
  EXPECT_THROW(atomic_write_file(path, "new content\n", "export.prom.write"),
               IoError);
  // The target still holds the previous version; the temp file is gone.
  EXPECT_EQ(read_file(path), "old content\n");
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST_F(DurableFileTest, AtomicWriteRenameFailpointLeavesTargetUntouched) {
  const std::string path = temp_path("atomic_rename.txt");
  std::remove(path.c_str());
  atomic_write_file(path, "old content\n", "export.prom.write");
  FailpointRegistry::instance().arm_specs(
      "checkpoint.rename:after=0:action=error");
  EXPECT_THROW(atomic_write_file(path, "new content\n", "export.prom.write"),
               IoError);
  EXPECT_EQ(read_file(path), "old content\n");
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST_F(DurableFileTest, AtomicWriteBadPathThrows) {
  EXPECT_THROW(atomic_write_file("/nonexistent-dir/out.txt", "x", "export.jsonl.write"),
               IoError);
  EXPECT_THROW(atomic_write_file("", "x", "export.jsonl.write"), IoError);
}

}  // namespace
}  // namespace pftk::robust
