// Property-based sweeps (parameterized gtest) over the model family:
// invariants that must hold at every point of the (p, RTT, T0, b, Wm)
// space, not just at hand-picked values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/approx_model.hpp"
#include "core/batch_eval.hpp"
#include "core/full_model.hpp"
#include "core/model_registry.hpp"
#include "core/model_terms.hpp"
#include "core/short_flow_model.hpp"
#include "core/td_only_model.hpp"
#include "core/throughput_model.hpp"

namespace pftk::model {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: (p, b) grid — scale-free invariants.
// ---------------------------------------------------------------------
class LossAckSweep : public ::testing::TestWithParam<std::tuple<double, int>> {
 protected:
  [[nodiscard]] ModelParams params(double rtt = 0.2, double t0 = 2.0,
                                   double wm = ModelParams::unlimited_window) const {
    ModelParams mp;
    mp.p = std::get<0>(GetParam());
    mp.b = std::get<1>(GetParam());
    mp.rtt = rtt;
    mp.t0 = t0;
    mp.wm = wm;
    return mp;
  }
};

TEST_P(LossAckSweep, AllRatesArePositiveAndFinite) {
  const ModelParams mp = params();
  EXPECT_GT(full_model_send_rate(mp), 0.0);
  EXPECT_TRUE(std::isfinite(full_model_send_rate(mp)));
  EXPECT_GT(td_only_send_rate(mp), 0.0);
  EXPECT_GT(approx_model_send_rate(params(0.2, 2.0, 64.0)), 0.0);
}

TEST_P(LossAckSweep, TimeoutsOnlySlowTcpDown) {
  const ModelParams mp = params();
  EXPECT_LE(full_model_send_rate(mp), td_only_send_rate(mp) * (1.0 + 1e-9));
}

TEST_P(LossAckSweep, RateScalesInverselyWithRttInTdRegime) {
  // With a negligible timeout cost, halving RTT doubles the rate.
  const ModelParams slow = params(0.4, 1e-7);
  const ModelParams fast = params(0.2, 1e-7);
  EXPECT_NEAR(full_model_send_rate(fast) / full_model_send_rate(slow), 2.0, 0.01);
}

TEST_P(LossAckSweep, LongerTimeoutsNeverHelp) {
  const double short_to = full_model_send_rate(params(0.2, 0.5));
  const double long_to = full_model_send_rate(params(0.2, 5.0));
  EXPECT_GE(short_to, long_to * (1.0 - 1e-9));
}

TEST_P(LossAckSweep, WindowCapOnlyReduces) {
  const double open = full_model_send_rate(params());
  const double capped = full_model_send_rate(params(0.2, 2.0, 8.0));
  EXPECT_LE(capped, open * (1.0 + 1e-9));
  EXPECT_LE(capped, 8.0 / 0.2 * (1.0 + 1e-9));
}

TEST_P(LossAckSweep, ThroughputNeverExceedsSendRate) {
  const ModelParams mp = params(0.2, 2.0, 32.0);
  EXPECT_LE(throughput_model_rate(mp), full_model_send_rate(mp) * (1.0 + 1e-9));
}

TEST_P(LossAckSweep, ExpectedWindowAndRoundsArePositive) {
  const ModelParams mp = params();
  EXPECT_GE(expected_unconstrained_window(mp.p, mp.b), 1.0);
  EXPECT_GE(expected_rounds_unconstrained(mp.p, mp.b), 1.0);
}

TEST_P(LossAckSweep, BreakdownIsInternallyConsistent) {
  const FullModelBreakdown bd = full_model_breakdown(params(0.2, 2.0, 24.0));
  EXPECT_GT(bd.numerator_packets, 0.0);
  EXPECT_GT(bd.denominator_seconds, 0.0);
  EXPECT_GE(bd.q_hat, 0.0);
  EXPECT_LE(bd.q_hat, 1.0);
  EXPECT_LE(bd.expected_window, 24.0 + 1e-9);
  EXPECT_NEAR(bd.send_rate, bd.numerator_packets / bd.denominator_seconds, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LossAckSweep,
    ::testing::Combine(::testing::Values(0.0005, 0.002, 0.01, 0.03, 0.08, 0.15, 0.3, 0.5,
                                         0.7),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<double, int>>& info) {
      return "p" + std::to_string(static_cast<int>(std::get<0>(info.param) * 10000)) +
             "_b" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 2: window limitation boundary.
// ---------------------------------------------------------------------
class WindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(WindowSweep, CeilingIsRespectedEverywhere) {
  const double wm = GetParam();
  for (double p = 0.0; p < 0.5; p += 0.02) {
    ModelParams mp;
    mp.p = p;
    mp.rtt = 0.25;
    mp.t0 = 1.5;
    mp.wm = wm;
    EXPECT_LE(full_model_send_rate(mp), wm / 0.25 * (1.0 + 1e-9))
        << "p=" << p << " wm=" << wm;
    EXPECT_LE(approx_model_send_rate(mp), wm / 0.25 * (1.0 + 1e-9));
    EXPECT_LE(throughput_model_rate(mp), wm / 0.25 * (1.0 + 1e-9));
  }
}

TEST_P(WindowSweep, MonotoneInWindow) {
  // A larger receiver window can only help.
  const double wm = GetParam();
  ModelParams small;
  small.p = 0.005;
  small.rtt = 0.25;
  small.t0 = 1.5;
  small.wm = wm;
  ModelParams big = small;
  big.wm = wm * 2.0;
  EXPECT_LE(full_model_send_rate(small), full_model_send_rate(big) * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(2.0, 6.0, 8.0, 16.0, 33.0, 48.0, 128.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "wm" + std::to_string(static_cast<int>(info.param));
                         });

// ---------------------------------------------------------------------
// Sweep 3: asymptotic agreement of all model forms as p -> 0 with an
// unconstrained window.
// ---------------------------------------------------------------------
class SmallPSweep : public ::testing::TestWithParam<double> {};

TEST_P(SmallPSweep, AllModelsConvergeToSqrtLaw) {
  const double p = GetParam();
  ModelParams mp;
  mp.p = p;
  mp.rtt = 0.3;
  mp.t0 = 2.0;
  mp.b = 2;
  mp.wm = ModelParams::unlimited_window;
  const double sqrt_law = std::sqrt(3.0 / (2.0 * 2.0 * p)) / 0.3;  // eq (20)
  EXPECT_NEAR(full_model_send_rate(mp) / sqrt_law, 1.0, 0.25) << "p=" << p;
  EXPECT_NEAR(approx_model_send_rate(mp) / sqrt_law, 1.0, 0.25) << "p=" << p;
  EXPECT_NEAR(td_only_send_rate(mp) / sqrt_law, 1.0, 0.25) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(TinyLoss, SmallPSweep,
                         ::testing::Values(1e-6, 3e-6, 1e-5, 3e-5, 1e-4),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "idx" + std::to_string(info.index);
                         });

// ---------------------------------------------------------------------
// Sweep 4: Inf/NaN audit. Every registered model (plus the throughput
// and short-flow forms) must return a finite, non-negative rate at every
// point of a [1e-6, 0.99] p-grid crossed with edge-case parameters —
// including the corners that used to leak (b large enough that eq (13)
// drops E[Wu] below one packet, Wm = 1, b = 1).
// ---------------------------------------------------------------------
class FiniteRateSweep
    : public ::testing::TestWithParam<std::tuple<int, double, double, double>> {
 protected:
  [[nodiscard]] ModelParams params(double p) const {
    ModelParams mp;
    mp.p = p;
    mp.b = std::get<0>(GetParam());
    mp.wm = std::get<1>(GetParam());
    mp.rtt = std::get<2>(GetParam());
    mp.t0 = std::get<3>(GetParam());
    return mp;
  }
  /// Log-spaced [1e-6, 0.99] grid plus the exact endpoints.
  [[nodiscard]] static std::vector<double> p_grid() {
    std::vector<double> grid;
    const double lo = std::log(1e-6);
    const double hi = std::log(0.99);
    constexpr int kPoints = 60;
    for (int i = 0; i < kPoints; ++i) {
      grid.push_back(std::exp(lo + (hi - lo) * i / (kPoints - 1)));
    }
    return grid;
  }
};

TEST_P(FiniteRateSweep, RegisteredModelsStayFiniteAndNonNegative) {
  for (const double p : p_grid()) {
    const ModelParams mp = params(p);
    for (const ModelKind kind : all_model_kinds) {
      const double rate = evaluate_model(kind, mp);
      EXPECT_TRUE(std::isfinite(rate)) << model_name(kind) << " @ " << mp.describe();
      EXPECT_GE(rate, 0.0) << model_name(kind) << " @ " << mp.describe();
    }
  }
}

TEST_P(FiniteRateSweep, BatchedPathAgreesWithScalarEverywhere) {
  const auto grid = p_grid();
  std::vector<double> batched(grid.size());
  for (const ModelKind kind : all_model_kinds) {
    evaluate_batch_p(kind, params(0.5), grid, batched);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const double scalar = evaluate_model(kind, params(grid[i]));
      EXPECT_NEAR(batched[i] / scalar, 1.0, 1e-12)
          << model_name(kind) << " @ p=" << grid[i];
    }
  }
}

TEST_P(FiniteRateSweep, ThroughputAndShortFlowStayFinite) {
  for (const double p : p_grid()) {
    const ModelParams mp = params(p);
    const double tput = throughput_model_rate(mp);
    EXPECT_TRUE(std::isfinite(tput)) << "T(p) @ " << mp.describe();
    EXPECT_GE(tput, 0.0) << "T(p) @ " << mp.describe();
    for (const std::uint64_t d : {std::uint64_t{1}, std::uint64_t{100}}) {
      const double latency = expected_transfer_latency(d, mp);
      EXPECT_TRUE(std::isfinite(latency)) << "d=" << d << " @ " << mp.describe();
      EXPECT_GT(latency, 0.0) << "d=" << d << " @ " << mp.describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeGrid, FiniteRateSweep,
    ::testing::Combine(::testing::Values(1, 2, 8),      // b, incl. stretch ACKs
                       ::testing::Values(1.0, 8.0, 64.0,
                                         ModelParams::unlimited_window),  // Wm
                       ::testing::Values(0.01, 0.2),    // RTT
                       ::testing::Values(0.05, 2.0)),   // T0
    [](const ::testing::TestParamInfo<std::tuple<int, double, double, double>>& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "_wm" +
             std::to_string(static_cast<int>(std::min(std::get<1>(info.param), 1e6))) +
             "_rtt" + std::to_string(static_cast<int>(std::get<2>(info.param) * 100)) +
             "_t0" + std::to_string(static_cast<int>(std::get<3>(info.param) * 100));
    });

TEST(NumericEdgeCases, LargeAckFactorAtHighLossNoLongerThrows) {
  // Regression: eq (13) gives E[Wu] = 0.876 here, below Qhat's w >= 1
  // domain, and the full model threw on perfectly valid params.
  ModelParams mp;
  mp.p = 0.9;
  mp.rtt = 0.2;
  mp.t0 = 2.0;
  mp.b = 8;
  mp.wm = 64.0;
  const double rate = full_model_send_rate(mp);
  EXPECT_TRUE(std::isfinite(rate));
  EXPECT_GT(rate, 0.0);
  EXPECT_TRUE(std::isfinite(throughput_model_rate(mp)));
}

}  // namespace
}  // namespace pftk::model
