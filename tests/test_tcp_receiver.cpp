#include <gtest/gtest.h>

#include <vector>

#include "sim/tcp_receiver.hpp"

namespace pftk::sim {
namespace {

struct ReceiverFixture {
  EventQueue queue;
  std::vector<Ack> acks;
  TcpReceiverConfig config;

  void wire(TcpReceiver& rx) {
    rx.set_send_ack([this](const Ack& a) { acks.push_back(a); });
  }

  void deliver(TcpReceiver& rx, SeqNo seq) {
    Segment s;
    s.seq = seq;
    rx.on_segment(s, queue.now());
  }
};

TEST(TcpReceiver, AcksEverySecondInOrderSegment) {
  ReceiverFixture f;
  TcpReceiver rx(f.queue, f.config);
  f.wire(rx);
  f.deliver(rx, 0);
  EXPECT_EQ(f.acks.size(), 0u);  // first of a pair is delayed
  f.deliver(rx, 1);
  ASSERT_EQ(f.acks.size(), 1u);
  EXPECT_EQ(f.acks[0].cumulative, 2u);
}

TEST(TcpReceiver, DelayedAckTimerFlushesStraggler) {
  ReceiverFixture f;
  TcpReceiver rx(f.queue, f.config);
  f.wire(rx);
  f.deliver(rx, 0);
  EXPECT_EQ(f.acks.size(), 0u);
  f.queue.run_until(0.5);  // heartbeat period is 0.2
  ASSERT_EQ(f.acks.size(), 1u);
  EXPECT_EQ(f.acks[0].cumulative, 1u);
  EXPECT_LE(f.acks[0].sent_at, 0.2 + 1e-9);
}

TEST(TcpReceiver, OutOfOrderTriggersImmediateDupAck) {
  ReceiverFixture f;
  TcpReceiver rx(f.queue, f.config);
  f.wire(rx);
  f.deliver(rx, 0);
  f.deliver(rx, 1);  // ACK 2
  f.deliver(rx, 3);  // hole at 2 -> immediate dup ACK with cum=2
  f.deliver(rx, 4);  // another dup
  ASSERT_EQ(f.acks.size(), 3u);
  EXPECT_EQ(f.acks[1].cumulative, 2u);
  EXPECT_EQ(f.acks[2].cumulative, 2u);
  EXPECT_EQ(rx.buffered(), 2u);
  EXPECT_EQ(rx.stats().dup_acks_sent, 2u);
}

TEST(TcpReceiver, FillingHoleAcksImmediatelyAndAdvances) {
  ReceiverFixture f;
  TcpReceiver rx(f.queue, f.config);
  f.wire(rx);
  f.deliver(rx, 0);
  f.deliver(rx, 1);
  f.deliver(rx, 3);
  f.deliver(rx, 2);  // fills the hole
  const Ack& last = f.acks.back();
  EXPECT_EQ(last.cumulative, 4u);
  EXPECT_EQ(rx.buffered(), 0u);
  EXPECT_EQ(rx.next_expected(), 4u);
}

TEST(TcpReceiver, DuplicateSegmentBelowCumPointIsAcked) {
  ReceiverFixture f;
  TcpReceiver rx(f.queue, f.config);
  f.wire(rx);
  f.deliver(rx, 0);
  f.deliver(rx, 1);
  const std::size_t before = f.acks.size();
  f.deliver(rx, 0);  // spurious retransmission
  ASSERT_EQ(f.acks.size(), before + 1);
  EXPECT_EQ(f.acks.back().cumulative, 2u);
  EXPECT_EQ(rx.stats().duplicate_segments, 1u);
}

TEST(TcpReceiver, AckEveryOneIsImmediate) {
  ReceiverFixture f;
  f.config.ack_every = 1;
  TcpReceiver rx(f.queue, f.config);
  f.wire(rx);
  f.deliver(rx, 0);
  f.deliver(rx, 1);
  EXPECT_EQ(f.acks.size(), 2u);
}

TEST(TcpReceiver, DupAckCountEqualsPacketsAfterHole) {
  // The paper's footnote: dup-ACKs are not delayed, so the number of
  // dup-ACKs equals the packets received past the hole.
  ReceiverFixture f;
  TcpReceiver rx(f.queue, f.config);
  f.wire(rx);
  f.deliver(rx, 0);
  f.deliver(rx, 1);
  const std::size_t before = f.acks.size();
  for (SeqNo s = 3; s < 9; ++s) {
    f.deliver(rx, s);
  }
  EXPECT_EQ(f.acks.size() - before, 6u);
  EXPECT_EQ(rx.stats().dup_acks_sent, 6u);
}

TEST(TcpReceiver, StatsCountArrivals) {
  ReceiverFixture f;
  TcpReceiver rx(f.queue, f.config);
  f.wire(rx);
  for (SeqNo s = 0; s < 10; ++s) {
    f.deliver(rx, s);
  }
  EXPECT_EQ(rx.stats().segments_received, 10u);
  EXPECT_EQ(rx.next_expected(), 10u);
}

TEST(TcpReceiver, ConfigValidation) {
  EventQueue q;
  TcpReceiverConfig bad;
  bad.ack_every = 0;
  EXPECT_THROW(TcpReceiver(q, bad), std::invalid_argument);
  bad.ack_every = 2;
  bad.delayed_ack_timeout = -0.1;
  EXPECT_THROW(TcpReceiver(q, bad), std::invalid_argument);
}

TEST(TcpReceiver, HoleFilledOnlyPartially) {
  ReceiverFixture f;
  TcpReceiver rx(f.queue, f.config);
  f.wire(rx);
  f.deliver(rx, 0);
  f.deliver(rx, 1);
  f.deliver(rx, 3);
  f.deliver(rx, 5);  // two holes: 2 and 4
  f.deliver(rx, 2);  // fills first hole only
  EXPECT_EQ(rx.next_expected(), 4u);
  EXPECT_EQ(rx.buffered(), 1u);  // seq 5 still buffered
  EXPECT_EQ(f.acks.back().cumulative, 4u);
}

}  // namespace
}  // namespace pftk::sim
