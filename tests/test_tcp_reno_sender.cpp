// Unit tests of the Reno state machine, driven with hand-crafted ACK
// streams (no links, no receiver): every transition the model relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sim/tcp_reno_sender.hpp"

namespace pftk::sim {
namespace {

struct SenderFixture {
  EventQueue queue;
  std::vector<Segment> sent;
  TcpRenoSenderConfig config;

  SenderFixture() {
    config.advertised_window = 16.0;
    config.min_rto = 1.0;
    config.timer_tick = 0.0;  // exact timers for determinism in tests
  }

  // Heap-allocated: the sender's timer events capture its address, so it
  // must never move after start().
  std::unique_ptr<TcpRenoSender> start() {
    auto s = std::make_unique<TcpRenoSender>(queue, config);
    s->set_send_segment([this](const Segment& seg) { sent.push_back(seg); });
    s->start();
    return s;
  }

  /// Delivers a cumulative ACK at the current queue time.
  static void ack(TcpRenoSender& s, EventQueue& q, SeqNo cum) {
    Ack a;
    a.cumulative = cum;
    s.on_ack(a, q.now());
  }
};

TEST(TcpRenoSender, InitialWindowIsOnePacket) {
  SenderFixture f;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  EXPECT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].seq, 0u);
  EXPECT_EQ(s.in_flight(), 1u);
}

TEST(TcpRenoSender, SlowStartDoublesPerRoundWithAckPerPacket) {
  SenderFixture f;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  SenderFixture::ack(s, f.queue, 1);  // ack seq 0
  // cwnd 2 -> two more packets (1, 2)
  EXPECT_EQ(f.sent.size(), 3u);
  SenderFixture::ack(s, f.queue, 2);
  SenderFixture::ack(s, f.queue, 3);
  // cwnd 4 -> packets 3,4,5,6 outstanding
  EXPECT_EQ(s.cwnd(), 4.0);
  EXPECT_EQ(s.in_flight(), 4u);
}

TEST(TcpRenoSender, CongestionAvoidanceGrowsByReciprocal) {
  SenderFixture f;
  f.config.initial_ssthresh = 2.0;  // leave slow start immediately
  f.config.initial_cwnd = 2.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  const double before = s.cwnd();
  SenderFixture::ack(s, f.queue, 1);
  EXPECT_NEAR(s.cwnd(), before + 1.0 / before, 1e-12);
}

TEST(TcpRenoSender, SlowStartCapsAtSsthresh) {
  SenderFixture f;
  f.config.initial_ssthresh = 4.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  SenderFixture::ack(s, f.queue, 1);
  SenderFixture::ack(s, f.queue, 2);
  SenderFixture::ack(s, f.queue, 3);
  SenderFixture::ack(s, f.queue, 4);
  EXPECT_LE(s.cwnd(), 4.0 + 1.0);  // one CA increment at most past the knee
  EXPECT_GE(s.cwnd(), 4.0);
}

TEST(TcpRenoSender, TripleDupAckTriggersFastRetransmit) {
  SenderFixture f;
  f.config.initial_cwnd = 8.0;
  f.config.initial_ssthresh = 8.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  ASSERT_EQ(f.sent.size(), 8u);
  SenderFixture::ack(s, f.queue, 4);  // new ack, 4 acked, sends more
  const std::size_t sent_before = f.sent.size();
  SenderFixture::ack(s, f.queue, 4);  // dup 1
  SenderFixture::ack(s, f.queue, 4);  // dup 2
  EXPECT_EQ(s.stats().fast_retransmits, 0u);
  SenderFixture::ack(s, f.queue, 4);  // dup 3 -> fast retransmit
  EXPECT_EQ(s.stats().fast_retransmits, 1u);
  EXPECT_TRUE(s.in_fast_recovery());
  // The retransmission resends snd_una.
  bool resent = false;
  for (std::size_t i = sent_before; i < f.sent.size(); ++i) {
    if (f.sent[i].seq == 4 && f.sent[i].retransmission) {
      resent = true;
    }
  }
  EXPECT_TRUE(resent);
  // ssthresh = half the flight.
  EXPECT_NEAR(s.ssthresh(), std::max(4.0, 2.0), 1e-9);
}

TEST(TcpRenoSender, LinuxStyleTwoDupAckThreshold) {
  SenderFixture f;
  f.config.dupack_threshold = 2;
  f.config.initial_cwnd = 8.0;
  f.config.initial_ssthresh = 8.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  SenderFixture::ack(s, f.queue, 4);
  SenderFixture::ack(s, f.queue, 4);
  EXPECT_EQ(s.stats().fast_retransmits, 0u);
  SenderFixture::ack(s, f.queue, 4);
  EXPECT_EQ(s.stats().fast_retransmits, 1u);
}

TEST(TcpRenoSender, FastRecoveryDeflatesOnNewAck) {
  SenderFixture f;
  f.config.initial_cwnd = 8.0;
  f.config.initial_ssthresh = 8.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  SenderFixture::ack(s, f.queue, 4);
  for (int i = 0; i < 3; ++i) {
    SenderFixture::ack(s, f.queue, 4);
  }
  ASSERT_TRUE(s.in_fast_recovery());
  const double ssthresh = s.ssthresh();
  SenderFixture::ack(s, f.queue, 9);  // new ack ends recovery
  EXPECT_FALSE(s.in_fast_recovery());
  EXPECT_DOUBLE_EQ(s.cwnd(), ssthresh);
}

TEST(TcpRenoSender, DupAcksInflateWindowDuringRecovery) {
  SenderFixture f;
  f.config.initial_cwnd = 8.0;
  f.config.initial_ssthresh = 8.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  SenderFixture::ack(s, f.queue, 4);
  for (int i = 0; i < 3; ++i) {
    SenderFixture::ack(s, f.queue, 4);
  }
  const double inflated = s.cwnd();
  SenderFixture::ack(s, f.queue, 4);  // 4th dup: inflate further
  EXPECT_DOUBLE_EQ(s.cwnd(), inflated + 1.0);
}

TEST(TcpRenoSender, TimeoutCollapsesWindowToOne) {
  SenderFixture f;
  f.config.initial_cwnd = 8.0;
  f.config.initial_ssthresh = 8.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  EXPECT_EQ(s.in_flight(), 8u);
  f.queue.run_until(10.0);  // no ACKs: the RTO fires
  EXPECT_GE(s.stats().timeouts, 1u);
  EXPECT_EQ(s.cwnd(), 1.0);
  // Exactly one retransmission per timeout (of snd_una).
  EXPECT_EQ(f.sent.back().seq, 0u);
  EXPECT_TRUE(f.sent.back().retransmission);
}

TEST(TcpRenoSender, ExponentialBackoffDoublesAndCaps) {
  SenderFixture f;
  f.config.initial_cwnd = 1.0;
  f.config.initial_rto = 1.0;
  f.config.min_rto = 1.0;
  f.config.max_rto = 1000.0;
  f.config.max_backoff_exponent = 3;  // cap at 8x for a fast test
  auto sp = f.start();
  TcpRenoSender& s = *sp;

  std::vector<Time> rexmit_times;
  f.queue.run_until(100.0);
  for (std::size_t i = 1; i < f.sent.size(); ++i) {
    if (f.sent[i].retransmission) {
      rexmit_times.push_back(0.0);
    }
  }
  // Timeouts at 1, 1+2, 1+2+4, 1+2+4+8, then +8 each: count within 100 s:
  // 1,3,7,15,23,31,... -> sequence capped at 8x spacing.
  EXPECT_GE(s.stats().timeouts, 10u);
  EXPECT_EQ(s.consecutive_timeouts(), static_cast<int>(s.stats().timeouts));
}

TEST(TcpRenoSender, BackoffClearsOnNewAck) {
  SenderFixture f;
  f.config.initial_cwnd = 4.0;
  f.config.initial_ssthresh = 8.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  f.queue.run_until(5.0);  // at least one timeout
  ASSERT_GT(s.consecutive_timeouts(), 0);
  SenderFixture::ack(s, f.queue, 1);
  EXPECT_EQ(s.consecutive_timeouts(), 0);
}

TEST(TcpRenoSender, RtoHonorsMinAndTick) {
  SenderFixture f;
  f.config.min_rto = 2.0;
  f.config.timer_tick = 0.5;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  // Feed a tiny RTT sample: RTO must still be >= min_rto.
  f.queue.run_until(0.01);
  SenderFixture::ack(s, f.queue, 1);
  EXPECT_GE(s.current_rto(), 2.0);
  EXPECT_NEAR(std::fmod(s.current_rto(), 0.5), 0.0, 1e-9);
}

TEST(TcpRenoSender, AdvertisedWindowCapsFlight) {
  SenderFixture f;
  f.config.advertised_window = 4.0;
  f.config.initial_cwnd = 10.0;
  f.config.initial_ssthresh = 100.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  EXPECT_EQ(s.in_flight(), 4u);
}

TEST(TcpRenoSender, StaleAckIsIgnored) {
  SenderFixture f;
  f.config.initial_cwnd = 4.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  SenderFixture::ack(s, f.queue, 2);
  const double cwnd = s.cwnd();
  const std::size_t sent = f.sent.size();
  SenderFixture::ack(s, f.queue, 1);  // below snd_una
  EXPECT_DOUBLE_EQ(s.cwnd(), cwnd);
  EXPECT_EQ(f.sent.size(), sent);
}

TEST(TcpRenoSender, RttEstimatorTracksSamples) {
  SenderFixture f;
  f.config.min_rto = 0.1;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  f.queue.run_until(0.2);
  SenderFixture::ack(s, f.queue, 1);
  EXPECT_NEAR(s.smoothed_rtt(), 0.2, 1e-9);
  // RTO = srtt + 4*rttvar = 0.2 + 4*0.1 = 0.6.
  EXPECT_NEAR(s.current_rto(), 0.6, 1e-9);
}

TEST(TcpRenoSender, StartWithoutCallbackThrows) {
  EventQueue q;
  TcpRenoSenderConfig cfg;
  TcpRenoSender s(q, cfg);
  EXPECT_THROW(s.start(), std::logic_error);
}

TEST(TcpRenoSender, ConfigValidation) {
  EventQueue q;
  TcpRenoSenderConfig cfg;
  cfg.dupack_threshold = 0;
  EXPECT_THROW(TcpRenoSender(q, cfg), std::invalid_argument);
  cfg = TcpRenoSenderConfig{};
  cfg.advertised_window = 0.0;
  EXPECT_THROW(TcpRenoSender(q, cfg), std::invalid_argument);
  cfg = TcpRenoSenderConfig{};
  cfg.max_backoff_exponent = 40;
  EXPECT_THROW(TcpRenoSender(q, cfg), std::invalid_argument);
  cfg = TcpRenoSenderConfig{};
  cfg.max_rto = 0.5;
  cfg.min_rto = 1.0;
  EXPECT_THROW(TcpRenoSender(q, cfg), std::invalid_argument);
}

TEST(TcpRenoSender, TimeoutPullsBackAndResendsGoBackN) {
  // After an RTO the sender must resend the old flight (go-back-N, as
  // 4.4BSD does), not wait for per-hole timeouts.
  SenderFixture f;
  f.config.initial_cwnd = 6.0;
  f.config.initial_ssthresh = 6.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  ASSERT_EQ(f.sent.size(), 6u);
  f.queue.run_until(5.0);  // RTO fires, whole flight lost
  ASSERT_GE(s.stats().timeouts, 1u);
  // First resend is seq 0 as a retransmission.
  EXPECT_EQ(f.sent[6].seq, 0u);
  EXPECT_TRUE(f.sent[6].retransmission);

  // Ack it: slow start resends seqs 1 and 2, still flagged retransmission.
  const std::size_t before = f.sent.size();
  SenderFixture::ack(s, f.queue, 1);
  ASSERT_EQ(f.sent.size(), before + 2);
  EXPECT_EQ(f.sent[before].seq, 1u);
  EXPECT_TRUE(f.sent[before].retransmission);
  EXPECT_EQ(f.sent[before + 1].seq, 2u);
  EXPECT_TRUE(f.sent[before + 1].retransmission);
}

TEST(TcpRenoSender, GoBackNResumesNewDataPastTheOldFlight) {
  SenderFixture f;
  f.config.initial_cwnd = 4.0;
  f.config.initial_ssthresh = 64.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  f.queue.run_until(5.0);  // timeout; pull back to seq 0
  SenderFixture::ack(s, f.queue, 4);  // receiver had buffered everything
  // All old data acked: the next transmissions are genuinely new.
  const std::size_t before = f.sent.size() == 0 ? 0 : f.sent.size();
  (void)before;
  bool saw_new = false;
  for (std::size_t i = f.sent.size(); i-- > 0;) {
    if (!f.sent[i].retransmission && f.sent[i].seq >= 4) {
      saw_new = true;
      break;
    }
  }
  EXPECT_TRUE(saw_new);
  EXPECT_GE(s.next_seq(), 4u);
}

TEST(TcpRenoSender, TransmissionStatsAreConsistent) {
  SenderFixture f;
  f.config.initial_cwnd = 8.0;
  f.config.initial_ssthresh = 8.0;
  auto sp = f.start();
  TcpRenoSender& s = *sp;
  SenderFixture::ack(s, f.queue, 4);
  for (int i = 0; i < 3; ++i) {
    SenderFixture::ack(s, f.queue, 4);
  }
  const TcpRenoSenderStats& st = s.stats();
  EXPECT_EQ(st.transmissions, st.new_segments + st.retransmissions);
  EXPECT_EQ(st.transmissions, f.sent.size());
  EXPECT_EQ(st.dup_acks_received, 3u);
}

}  // namespace
}  // namespace pftk::sim
