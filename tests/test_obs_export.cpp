// The exporters' contract: Prometheus text follows the exposition
// conventions (cumulative le buckets, _sum/_count), the pftk-obs/1 JSONL
// round-trips losslessly, and the lenient reader salvages damaged files
// line by line — but refuses files that are not obs files at all.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "robust/durable_file.hpp"

namespace pftk::obs {
namespace {

/// A snapshot with one of each metric kind and interesting values.
MetricsSnapshot sample_snapshot() {
  MetricsRegistry registry;
  const MetricId sent = registry.counter("pftk_sent_total", "segments sent");
  const MetricId peak = registry.gauge("pftk_peak", "heap high-water");
  // Exactly-representable bounds, so the exposition text is predictable.
  const MetricId lat =
      registry.histogram("pftk_lat_seconds", "latency", {0.25, 0.5, 1.0});
  registry.freeze(1);
  auto& shard = registry.shard(0);
  shard.add(sent, 42.0);
  shard.set(peak, 17.0);
  shard.observe(lat, 0.125);
  shard.observe(lat, 0.25);
  shard.observe(lat, 0.75);
  shard.observe(lat, 3.0);
  return registry.snapshot();
}

ObsBundle sample_bundle() {
  ObsBundle bundle;
  bundle.source = "test";
  bundle.metrics = sample_snapshot();
  bundle.events.push_back({0.5, ConnEventKind::kSlowStartEnter, 1.0, 1e9});
  bundle.events.push_back({1.25, ConnEventKind::kRtoFire, 2.0, 3.5});
  bundle.events_dropped = 3;
  SpanRecord span;
  span.name = "a->b/s1";
  span.outcome = "ok";
  span.attempts = 2;
  span.total_seconds = 0.25;
  span.backoff_seconds = 0.125;
  span.journal_writes = 1;
  span.journal_bytes = 120;
  span.phases.push_back({"backoff", 0.125, "before attempt 2"});
  span.phases.push_back({"attempt", 0.1, "ok"});
  bundle.spans.push_back(span);
  return bundle;
}

TEST(ObsExport, PrometheusTextFollowsExpositionConventions) {
  std::ostringstream os;
  write_prometheus(os, sample_snapshot());
  const std::string text = os.str();

  EXPECT_NE(text.find("# HELP pftk_sent_total segments sent\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pftk_sent_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("pftk_sent_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pftk_peak gauge\n"), std::string::npos);
  EXPECT_NE(text.find("pftk_peak 17\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pftk_lat_seconds histogram\n"), std::string::npos);
  // Buckets are cumulative: 2 at le=0.25 (0.125 and the inclusive edge
  // 0.25), still 2 at le=0.5, 3 at le=1.0, 4 at +Inf.
  EXPECT_NE(text.find("pftk_lat_seconds_bucket{le=\"0.25\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("pftk_lat_seconds_bucket{le=\"0.5\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("pftk_lat_seconds_bucket{le=\"1\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("pftk_lat_seconds_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("pftk_lat_seconds_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("pftk_lat_seconds_sum "), std::string::npos);
}

TEST(ObsExport, JsonlRoundTripIsLossless) {
  const ObsBundle original = sample_bundle();
  std::stringstream stream;
  write_obs_jsonl(stream, original);

  ObsReadReport report;
  const ObsBundle back = read_obs_jsonl(stream, &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(back.source, "test");
  EXPECT_EQ(back.events_dropped, 3u);

  ASSERT_EQ(back.metrics.metrics.size(), original.metrics.metrics.size());
  for (std::size_t i = 0; i < original.metrics.metrics.size(); ++i) {
    const MetricValue& a = original.metrics.metrics[i];
    const MetricValue& b = back.metrics.metrics[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.help, b.help);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_DOUBLE_EQ(a.value, b.value);
    EXPECT_EQ(a.bounds, b.bounds);
    EXPECT_EQ(a.buckets, b.buckets);
    EXPECT_EQ(a.count, b.count);
    EXPECT_DOUBLE_EQ(a.sum, b.sum);
    EXPECT_EQ(a.rejected, b.rejected);
  }

  ASSERT_EQ(back.events.size(), 2u);
  EXPECT_DOUBLE_EQ(back.events[0].t, 0.5);
  EXPECT_EQ(back.events[0].kind, ConnEventKind::kSlowStartEnter);
  EXPECT_DOUBLE_EQ(back.events[0].aux, 1e9);
  EXPECT_EQ(back.events[1].kind, ConnEventKind::kRtoFire);
  EXPECT_DOUBLE_EQ(back.events[1].value, 2.0);

  ASSERT_EQ(back.spans.size(), 1u);
  const SpanRecord& span = back.spans[0];
  EXPECT_EQ(span.name, "a->b/s1");
  EXPECT_EQ(span.outcome, "ok");
  EXPECT_EQ(span.attempts, 2);
  EXPECT_DOUBLE_EQ(span.total_seconds, 0.25);
  EXPECT_DOUBLE_EQ(span.backoff_seconds, 0.125);
  EXPECT_EQ(span.journal_writes, 1u);
  EXPECT_EQ(span.journal_bytes, 120u);
  ASSERT_EQ(span.phases.size(), 2u);
  EXPECT_EQ(span.phases[0].name, "backoff");
  EXPECT_EQ(span.phases[0].detail, "before attempt 2");
  EXPECT_EQ(span.phases[1].name, "attempt");
}

TEST(ObsExport, LenientReaderSalvagesDamagedLines) {
  std::stringstream stream;
  write_obs_jsonl(stream, sample_bundle());
  std::string text = stream.str();

  // Corrupt one metric line and append a torn tail — both must be
  // dropped and counted, everything else salvaged.
  const std::size_t at = text.find("\"name\":\"pftk_peak\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 6, "\"nope\"");
  text += "{\"kind\":\"event\",\"t\":9.9,\"even";

  std::istringstream is(text);
  ObsReadReport report;
  const ObsBundle back = read_obs_jsonl(is, &report);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.lines_dropped, 2u);
  EXPECT_FALSE(report.first_error.empty());
  EXPECT_EQ(back.metrics.metrics.size(), 2u);  // the gauge line was lost
  EXPECT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.spans.size(), 1u);
}

TEST(ObsExport, RejectsFilesWithoutAValidHeader) {
  std::istringstream empty("");
  EXPECT_THROW((void)read_obs_jsonl(empty), std::invalid_argument);

  std::istringstream garbage("this is a TSV trace\n1\t2\t3\n");
  EXPECT_THROW((void)read_obs_jsonl(garbage), std::invalid_argument);

  std::istringstream wrong_schema(
      "{\"schema\":\"pftk-obs/999\",\"kind\":\"header\",\"source\":\"x\","
      "\"events_dropped\":0}\n");
  EXPECT_THROW((void)read_obs_jsonl(wrong_schema), std::invalid_argument);
}

TEST(ObsExport, UnknownRecordKindsAreSkippedNotFatal) {
  // Forward compatibility: a future writer may add record kinds; today's
  // reader must count them as dropped and keep going.
  std::istringstream is(
      "{\"schema\":\"pftk-obs/1\",\"kind\":\"header\",\"source\":\"x\","
      "\"events_dropped\":0}\n"
      "{\"kind\":\"hologram\",\"data\":1}\n"
      "{\"kind\":\"event\",\"t\":1,\"event\":\"rto_fire\",\"value\":1,\"aux\":0}\n");
  ObsReadReport report;
  const ObsBundle back = read_obs_jsonl(is, &report);
  EXPECT_EQ(report.lines_dropped, 1u);
  ASSERT_EQ(back.events.size(), 1u);
  EXPECT_EQ(back.events[0].kind, ConnEventKind::kRtoFire);
}

TEST(ObsExport, FileWrappersPickFormatBySuffix) {
  EXPECT_TRUE(is_prometheus_path("metrics.prom"));
  EXPECT_FALSE(is_prometheus_path("metrics.jsonl"));
  EXPECT_FALSE(is_prometheus_path("prom"));

  const std::string dir = ::testing::TempDir();
  const std::string jsonl_path = dir + "pftk_obs_roundtrip.jsonl";
  save_obs_file(jsonl_path, sample_bundle());
  ObsReadReport report;
  const ObsBundle back = load_obs_file(jsonl_path, &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(back.source, "test");
  EXPECT_EQ(back.events.size(), 2u);

  const std::string prom_path = dir + "pftk_obs_roundtrip.prom";
  save_obs_file(prom_path, sample_bundle());
  EXPECT_THROW((void)load_obs_file(prom_path), std::invalid_argument);

  EXPECT_THROW(save_obs_file(dir + "no/such/dir/x.jsonl", sample_bundle()),
               pftk::robust::IoError);
  EXPECT_THROW((void)load_obs_file(dir + "pftk_obs_missing.jsonl"),
               std::invalid_argument);
}

}  // namespace
}  // namespace pftk::obs
