#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/full_model.hpp"
#include "core/markov_model.hpp"

namespace pftk::model {
namespace {

ModelParams fig12_params(double p) {
  // Fig. 12 operating point: RTT = 0.47 s, T0 = 3.2 s, Wm = 12.
  ModelParams mp;
  mp.p = p;
  mp.rtt = 0.47;
  mp.t0 = 3.2;
  mp.b = 2;
  mp.wm = 12.0;
  return mp;
}

TEST(MarkovModel, StationaryDistributionSumsToOne) {
  const MarkovModelResult r = markov_model_solve(fig12_params(0.05));
  const double total = std::accumulate(r.stationary.begin(), r.stationary.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MarkovModel, CloseToFullModelAtFig12OperatingPoint) {
  // The paper's Fig. 12: the numerically-solved Markov model closely
  // matches the closed form across the p sweep.
  for (const double p : {0.01, 0.02, 0.05, 0.1, 0.2, 0.3}) {
    const double markov = markov_model_send_rate(fig12_params(p));
    const double closed = full_model_send_rate(fig12_params(p));
    EXPECT_NEAR(markov / closed, 1.0, 0.35) << "p=" << p;
  }
}

TEST(MarkovModel, MonotoneDecreasingInLoss) {
  double prev = markov_model_send_rate(fig12_params(0.005));
  for (const double p : {0.01, 0.03, 0.08, 0.2, 0.4}) {
    const double cur = markov_model_send_rate(fig12_params(p));
    EXPECT_LT(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(MarkovModel, TimeoutFractionGrowsWithLoss) {
  const double low = markov_model_solve(fig12_params(0.01)).timeout_fraction;
  const double high = markov_model_solve(fig12_params(0.3)).timeout_fraction;
  EXPECT_LT(low, high);
  EXPECT_GT(low, 0.0);
  EXPECT_LE(high, 1.0);
}

TEST(MarkovModel, ExpectedStartWindowShrinksWithLoss) {
  const double low = markov_model_solve(fig12_params(0.01)).expected_start_window;
  const double high = markov_model_solve(fig12_params(0.3)).expected_start_window;
  EXPECT_GT(low, high);
  EXPECT_GE(high, 1.0);
}

TEST(MarkovModel, UnlimitedWindowIsTruncatedSanely) {
  ModelParams mp = fig12_params(0.05);
  mp.wm = ModelParams::unlimited_window;
  const MarkovModelResult r = markov_model_solve(mp);
  EXPECT_GT(r.send_rate, 0.0);
  // Truncation must not depend pathologically on the cap: doubling the
  // cap barely changes the rate.
  MarkovModelOptions wide;
  wide.max_window_states = 512;
  const MarkovModelResult r2 = markov_model_solve(mp, wide);
  EXPECT_NEAR(r.send_rate / r2.send_rate, 1.0, 0.02);
}

TEST(MarkovModel, RejectsZeroLoss) {
  EXPECT_THROW(markov_model_solve(fig12_params(0.0)), std::invalid_argument);
}

TEST(MarkovModel, RejectsTinyStateSpace) {
  MarkovModelOptions opt;
  opt.max_window_states = 2;
  EXPECT_THROW(markov_model_solve(fig12_params(0.05), opt), std::invalid_argument);
}

TEST(MarkovModel, ConvergesQuickly) {
  const MarkovModelResult r = markov_model_solve(fig12_params(0.05));
  EXPECT_LT(r.iterations, 10000u);
}

}  // namespace
}  // namespace pftk::model
