#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/full_model.hpp"
#include "core/model_terms.hpp"
#include "core/throughput_model.hpp"

namespace pftk::model {
namespace {

ModelParams params(double p, double rtt = 0.47, double t0 = 3.2, int b = 2,
                   double wm = 12.0) {
  // Defaults are the Fig.-13 operating point: Wm=12, RTT=470ms, T0=3.2s.
  ModelParams mp;
  mp.p = p;
  mp.rtt = rtt;
  mp.t0 = t0;
  mp.b = b;
  mp.wm = wm;
  return mp;
}

TEST(ThroughputModel, NeverExceedsSendRate) {
  // T(p) counts only delivered packets; B(p) counts all transmissions.
  for (double p = 0.001; p < 0.7; p *= 1.4) {
    const ModelParams mp = params(p);
    EXPECT_LE(throughput_model_rate(mp), full_model_send_rate(mp) * (1.0 + 1e-9))
        << "p=" << p;
  }
}

TEST(ThroughputModel, GapGrowsWithLoss) {
  // Fig. 13: send rate and throughput diverge as p grows.
  const double ratio_low =
      throughput_model_rate(params(0.01)) / full_model_send_rate(params(0.01));
  const double ratio_high =
      throughput_model_rate(params(0.4)) / full_model_send_rate(params(0.4));
  EXPECT_GT(ratio_low, ratio_high);
}

TEST(ThroughputModel, ZeroLossIsCeiling) {
  EXPECT_DOUBLE_EQ(throughput_model_rate(params(0.0)), 12.0 / 0.47);
}

TEST(ThroughputModel, MonotoneDecreasingInLoss) {
  double prev = throughput_model_rate(params(0.0005));
  for (double p = 0.001; p < 0.9; p += 0.01) {
    const double cur = throughput_model_rate(params(p));
    EXPECT_LE(cur, prev * (1.0 + 1e-9)) << "p=" << p;
    prev = cur;
  }
}

TEST(ThroughputModel, MatchesHandComputedEq37) {
  // Window-limited branch of eq (37) at b=2 (paper's stated form):
  // numerator (1-p)/p + Wm/2 + Q, denominator RTT(Wm/4 + (1-p)/(p Wm) + 2)
  // + Q G(p) T0 / (1-p). Use p large enough that Wm=12 binds.
  const double p = 0.004;  // E[Wu] ~ 18.8 > 12
  const double wm = 12.0;
  const double qh = q_hat_exact(p, wm);
  const double g = backoff_polynomial(p);
  const double numerator = (1.0 - p) / p + wm / 2.0 + qh;
  const double denominator =
      0.47 * (wm / 4.0 + (1.0 - p) / (p * wm) + 2.0) + qh * g * 3.2 / (1.0 - p);
  EXPECT_NEAR(throughput_model_rate(params(p)), numerator / denominator, 1e-12);
}

TEST(ThroughputModel, UnconstrainedBranchMatchesEq37) {
  // Unconstrained: numerator (1-p)/p + W(p)/2 + Q, denominator
  // RTT(W(p)+1) + Q G T0/(1-p), with W(p) from eq (38) (b=2 form).
  const double p = 0.15;  // E[Wu] ~ 5.1 < 12
  const double w = expected_unconstrained_window(p, 2);
  const double qh = q_hat_exact(p, w);
  const double g = backoff_polynomial(p);
  const double numerator = (1.0 - p) / p + w / 2.0 + qh;
  const double denominator = 0.47 * (w + 1.0) + qh * g * 3.2 / (1.0 - p);
  EXPECT_NEAR(throughput_model_rate(params(p)), numerator / denominator, 1e-12);
}

TEST(DeliveredFraction, InUnitInterval) {
  for (double p = 0.001; p < 0.8; p *= 1.7) {
    const double frac = delivered_fraction(params(p));
    EXPECT_GT(frac, 0.0) << "p=" << p;
    EXPECT_LE(frac, 1.0) << "p=" << p;
  }
}

TEST(DeliveredFraction, NearOneForTinyLoss) {
  EXPECT_GT(delivered_fraction(params(1e-5)), 0.95);
}

TEST(ThroughputModel, ValidatesInput) {
  ModelParams mp = params(0.1);
  mp.b = 0;
  EXPECT_THROW((void)throughput_model_rate(mp), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::model
