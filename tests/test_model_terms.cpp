// Unit tests for the individual equations of Section II.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/model_terms.hpp"

namespace pftk::model {
namespace {

TEST(BackoffPolynomial, ValueAtZeroIsOne) {
  EXPECT_DOUBLE_EQ(backoff_polynomial(0.0), 1.0);
}

TEST(BackoffPolynomial, KnownValue) {
  // f(0.5) = 1 + .5 + 2*.25 + 4*.125 + 8*.0625 + 16*.03125 + 32*.015625
  //        = 1 + .5 + .5 + .5 + .5 + .5 + .5 = 4.0
  EXPECT_NEAR(backoff_polynomial(0.5), 4.0, 1e-12);
}

TEST(BackoffPolynomial, MonotoneIncreasing) {
  double prev = backoff_polynomial(0.0);
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double cur = backoff_polynomial(p);
    EXPECT_GT(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(BackoffPolynomial, RejectsOutOfRange) {
  EXPECT_THROW((void)backoff_polynomial(-0.01), std::invalid_argument);
  EXPECT_THROW((void)backoff_polynomial(1.0), std::invalid_argument);
}

TEST(ExpectedWindow, MatchesSqrtAsymptoteForSmallP) {
  // eq (14): E[W] -> sqrt(8/(3 b p)) as p -> 0.
  for (const int b : {1, 2}) {
    const double p = 1e-6;
    const double asymptote = std::sqrt(8.0 / (3.0 * b * p));
    EXPECT_NEAR(expected_unconstrained_window(p, b) / asymptote, 1.0, 1e-2);
  }
}

TEST(ExpectedWindow, KnownValueAtTenPercentB2) {
  // Direct evaluation of eq (13) with p=0.1, b=2: c = 4/6 = 2/3,
  // E[W] = 2/3 + sqrt(8*0.9/(6*0.1) + 4/9) = 2/3 + sqrt(12 + 4/9).
  const double expected = 2.0 / 3.0 + std::sqrt(12.0 + 4.0 / 9.0);
  EXPECT_NEAR(expected_unconstrained_window(0.1, 2), expected, 1e-12);
}

TEST(ExpectedWindow, DecreasesWithLoss) {
  double prev = expected_unconstrained_window(0.001, 2);
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double cur = expected_unconstrained_window(p, 2);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(ExpectedWindow, SmallerWithDelayedAcks) {
  // b = 2 halves the growth rate, so the expected window shrinks.
  for (const double p : {0.01, 0.05, 0.2}) {
    EXPECT_LT(expected_unconstrained_window(p, 2),
              expected_unconstrained_window(p, 1));
  }
}

TEST(ExpectedRounds, RelatedToWindowByEq11) {
  // eq (11): E[W] = (2/b) E[X] holds asymptotically; check the exact
  // forms differ only in the additive constant regime for small p.
  const double p = 1e-5;
  for (const int b : {1, 2}) {
    const double ew = expected_unconstrained_window(p, b);
    const double ex = expected_rounds_unconstrained(p, b);
    EXPECT_NEAR(ex / (b * ew / 2.0), 1.0, 2e-2);
  }
}

TEST(QHatExact, OneForTinyWindows) {
  EXPECT_DOUBLE_EQ(q_hat_exact(0.05, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(q_hat_exact(0.05, 3.0), 1.0);
}

TEST(QHatExact, LimitIsThreeOverW) {
  // lim p->0 Qhat(w) = 3/w (stated below eq 24).
  for (const double w : {4.0, 8.0, 16.0, 64.0}) {
    EXPECT_NEAR(q_hat_exact(1e-9, w), 3.0 / w, 1e-6) << "w=" << w;
  }
}

TEST(QHatExact, WithinUnitInterval) {
  for (double p = 0.01; p < 1.0; p += 0.07) {
    for (double w = 1.0; w < 100.0; w *= 1.7) {
      const double q = q_hat_exact(p, w);
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
  }
}

TEST(QHatExact, ApproximationIsCloseForSmallLoss) {
  // eq (25): Qhat(w) ~= min(1, 3/w) — an approximation anchored at the
  // p -> 0 limit, so check closeness in the small-p regime.
  for (const double p : {0.001, 0.005, 0.01}) {
    for (const double w : {4.0, 8.0, 16.0, 32.0}) {
      EXPECT_NEAR(q_hat_exact(p, w), q_hat_approx(w), 0.1)
          << "p=" << p << " w=" << w;
    }
  }
}

TEST(QHatExact, ExceedsApproximationAtHighLoss) {
  // At larger p the exact Qhat grows above 3/w: timeouts become more
  // likely than the small-p limit suggests.
  for (const double w : {8.0, 16.0, 32.0}) {
    EXPECT_GT(q_hat_exact(0.2, w), q_hat_approx(w)) << "w=" << w;
  }
}

TEST(QHatSummation, ReproducesClosedFormExactly) {
  // The summation of eq (22)/(23) and the closed form of eq (24) are the
  // same quantity — an independent verification of the paper's algebra.
  for (const double p : {0.001, 0.01, 0.05, 0.2, 0.5, 0.9}) {
    for (const int w : {1, 2, 3, 4, 5, 8, 16, 33, 64}) {
      EXPECT_NEAR(q_hat_summation(p, w), q_hat_exact(p, static_cast<double>(w)), 1e-12)
          << "p=" << p << " w=" << w;
    }
  }
}

TEST(QHatSummation, SmallWindowsAlwaysTimeout) {
  EXPECT_DOUBLE_EQ(q_hat_summation(0.1, 1), 1.0);
  EXPECT_DOUBLE_EQ(q_hat_summation(0.1, 3), 1.0);
}

TEST(QHatSummation, DomainChecks) {
  EXPECT_THROW((void)q_hat_summation(0.0, 8), std::invalid_argument);
  EXPECT_THROW((void)q_hat_summation(0.5, 0), std::invalid_argument);
}

TEST(QHatApprox, MinOfOneAndThreeOverW) {
  EXPECT_DOUBLE_EQ(q_hat_approx(1.0), 1.0);
  EXPECT_DOUBLE_EQ(q_hat_approx(2.0), 1.0);
  EXPECT_DOUBLE_EQ(q_hat_approx(6.0), 0.5);
  EXPECT_DOUBLE_EQ(q_hat_approx(30.0), 0.1);
}

TEST(ExpectedTimeouts, GeometricMean) {
  // E[R] = 1/(1-p), eq (27).
  EXPECT_DOUBLE_EQ(expected_timeouts_in_sequence(0.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_timeouts_in_sequence(0.5), 2.0);
  EXPECT_NEAR(expected_timeouts_in_sequence(0.9), 10.0, 1e-12);
}

TEST(TimeoutSequenceDuration, DoublingThenPlateau) {
  const double t0 = 2.0;
  // L_k = (2^k - 1) T0 for k <= 6.
  EXPECT_DOUBLE_EQ(timeout_sequence_duration(1, t0), 1.0 * t0);
  EXPECT_DOUBLE_EQ(timeout_sequence_duration(2, t0), 3.0 * t0);
  EXPECT_DOUBLE_EQ(timeout_sequence_duration(6, t0), 63.0 * t0);
  // L_7 = (63 + 64) T0, L_8 = (63 + 128) T0.
  EXPECT_DOUBLE_EQ(timeout_sequence_duration(7, t0), 127.0 * t0);
  EXPECT_DOUBLE_EQ(timeout_sequence_duration(8, t0), 191.0 * t0);
}

TEST(TimeoutSequenceDuration, IrixCapAtFiveDoublings) {
  const double t0 = 1.0;
  EXPECT_DOUBLE_EQ(timeout_sequence_duration(5, t0, 5), 31.0);
  EXPECT_DOUBLE_EQ(timeout_sequence_duration(6, t0, 5), 31.0 + 32.0);
}

TEST(TimeoutSequenceDuration, RejectsBadArguments) {
  EXPECT_THROW((void)timeout_sequence_duration(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)timeout_sequence_duration(1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)timeout_sequence_duration(1, 1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)timeout_sequence_duration(1, 1.0, 31), std::invalid_argument);
}

TEST(ExpectedTimeoutDuration, ClosedFormMatchesDirectSummation) {
  // The closed form T0 f(p)/(1-p) must equal the direct sum at cap 6.
  for (const double p : {0.0, 0.01, 0.1, 0.3, 0.6, 0.9}) {
    const double closed = expected_timeout_sequence_duration(p, 2.5);
    const double direct = expected_timeout_sequence_duration_capped(p, 2.5, 6);
    EXPECT_NEAR(closed, direct, 1e-9 * std::max(1.0, closed)) << "p=" << p;
  }
}

TEST(ExpectedTimeoutDuration, ReducesToT0WithoutLoss) {
  EXPECT_DOUBLE_EQ(expected_timeout_sequence_duration(0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(expected_timeout_sequence_duration_capped(0.0, 3.0, 4), 3.0);
}

TEST(ExpectedTimeoutDuration, SmallerCapShortensSequences) {
  // With the plateau reached earlier, long sequences are cheaper.
  const double p = 0.5;
  EXPECT_LT(expected_timeout_sequence_duration_capped(p, 1.0, 3),
            expected_timeout_sequence_duration_capped(p, 1.0, 6));
}

TEST(Terms, DomainChecks) {
  EXPECT_THROW((void)expected_unconstrained_window(0.0, 2), std::invalid_argument);
  EXPECT_THROW((void)expected_unconstrained_window(0.5, 0), std::invalid_argument);
  EXPECT_THROW((void)expected_rounds_unconstrained(1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)q_hat_exact(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW((void)q_hat_exact(0.5, 0.5), std::invalid_argument);
  EXPECT_THROW((void)q_hat_approx(0.0), std::invalid_argument);
  EXPECT_THROW((void)expected_timeouts_in_sequence(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::model
