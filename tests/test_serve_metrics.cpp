// ConcurrentHistogram's saturation contract and the mergeable snapshot
// that carries the per-shard queue-wait histograms: counts near
// UINT64_MAX must stick at the ceiling instead of wrapping (a wrapped
// count would silently break the accounting identity and every
// quantile that divides by it), and merging shard snapshots must
// saturate the same way while reproducing the single-histogram
// quantile walk.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "serve/serve_metrics.hpp"

namespace pftk::serve {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(ConcurrentHistogram, CountSaturatesAtUint64MaxInsteadOfWrapping) {
  ConcurrentHistogram h({1.0, 2.0});
  h.observe_n(0.5, kMax - 2);
  EXPECT_EQ(h.count(), kMax - 2);
  // Three more observations would wrap a naive fetch_add to 1.
  h.observe_n(0.5, 3);
  EXPECT_EQ(h.count(), kMax);
  EXPECT_EQ(h.bucket_counts()[0], kMax);
  // Once pinned, further observations leave the ceiling untouched.
  h.observe(0.5);
  EXPECT_EQ(h.count(), kMax);
  EXPECT_EQ(h.bucket_counts()[0], kMax);
}

TEST(ConcurrentHistogram, BucketAndRejectedSaturateIndependently) {
  ConcurrentHistogram h({1.0});
  h.observe_n(10.0, kMax - 1);  // +inf bucket near ceiling
  h.observe_n(10.0, 5);
  EXPECT_EQ(h.bucket_counts()[1], kMax);
  EXPECT_EQ(h.count(), kMax);
  // Rejected counter has its own ceiling.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  h.observe_n(nan, kMax - 1);
  h.observe_n(nan, 4);
  EXPECT_EQ(h.rejected(), kMax);
  // Rejections never touch the buckets or the count.
  EXPECT_EQ(h.count(), kMax);
}

TEST(ConcurrentHistogram, QuantileStillAnswersAtTheCeiling) {
  ConcurrentHistogram h({1.0, 2.0, 4.0});
  h.observe_n(0.5, kMax - 1);
  h.observe_n(0.5, 10);
  // A wrapped count would make the quantile walk terminate in the wrong
  // bucket; the saturated histogram keeps every sample in [0, 1].
  EXPECT_GT(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(0.99), 1.0);
}

TEST(HistogramSnapshot, MergeSaturatesCounts) {
  ConcurrentHistogram a({1.0}), b({1.0});
  a.observe_n(0.5, kMax - 3);
  b.observe_n(0.5, 10);
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, kMax);
  EXPECT_EQ(merged.buckets[0], kMax);
}

TEST(HistogramSnapshot, MergeMatchesSingleHistogramQuantiles) {
  // Two shards observing disjoint halves of a workload must merge to
  // the same quantiles as one histogram that saw everything.
  const auto bounds = default_queue_wait_bounds_ms();
  ConcurrentHistogram whole(bounds), shard_a(bounds), shard_b(bounds);
  for (int i = 1; i <= 100; ++i) {
    const double x = 0.01 * static_cast<double>(i);
    whole.observe(x);
    (i % 2 == 0 ? shard_a : shard_b).observe(x);
  }
  HistogramSnapshot merged = shard_a.snapshot();
  merged.merge(shard_b.snapshot());
  EXPECT_EQ(merged.count, whole.count());
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), whole.quantile(0.5));
  EXPECT_DOUBLE_EQ(merged.quantile(0.99), whole.quantile(0.99));
}

TEST(HistogramSnapshot, MergeRejectsMismatchedBounds) {
  ConcurrentHistogram a({1.0}), b({2.0});
  HistogramSnapshot s = a.snapshot();
  EXPECT_THROW(s.merge(b.snapshot()), std::invalid_argument);
}

TEST(ServeSummary, CarriesMergedQueueWaitQuantiles) {
  ServeTotals totals;
  totals.requests.store(4);
  totals.served.store(4);
  ConcurrentHistogram latency(default_latency_bounds());
  ConcurrentHistogram queue_wait(default_queue_wait_bounds_ms());
  for (int i = 0; i < 100; ++i) {
    queue_wait.observe(0.2);  // 200 µs of queueing
  }
  const ServeSummary summary = summarize(totals, latency, queue_wait.snapshot());
  EXPECT_TRUE(summary.accounting_ok());
  EXPECT_GT(summary.queue_wait_p50_ms, 0.0);
  EXPECT_GE(summary.queue_wait_p99_ms, summary.queue_wait_p50_ms);
  // And the human-readable report mentions it.
  EXPECT_NE(summary.describe().find("queue wait"), std::string::npos);
}

TEST(BusyRetryHint, ColdShardNeverQuotesZero) {
  // Before the first request completes the service EWMA is still 0.0;
  // the hint must floor at 1 ms, not tell clients to hammer back in 0.
  EXPECT_EQ(busy_retry_hint_ms(0.0, 64), 1u);
  EXPECT_EQ(busy_retry_hint_ms(0.0, 0), 1u);
}

TEST(BusyRetryHint, ScalesWithQueueDrainEstimate) {
  // 2 ms EWMA × depth 64 → 128 ms to drain a full queue.
  EXPECT_EQ(busy_retry_hint_ms(0.002, 64), 128u);
  // Sub-millisecond estimates round down onto the floor.
  EXPECT_EQ(busy_retry_hint_ms(1e-6, 100), 1u);
}

TEST(BusyRetryHint, WedgedShardIsCappedAtThirtySeconds) {
  EXPECT_EQ(busy_retry_hint_ms(10.0, 4096), 30000u);
  // Pathological inputs (poisoned EWMA) clamp instead of propagating.
  EXPECT_EQ(busy_retry_hint_ms(std::numeric_limits<double>::infinity(), 64),
            30000u);
  EXPECT_EQ(busy_retry_hint_ms(std::numeric_limits<double>::quiet_NaN(), 64),
            1u);
}

TEST(ServeMetrics, BundleExportsQueueWaitHistogram) {
  ServeTotals totals;
  ConcurrentHistogram latency(default_latency_bounds());
  ConcurrentHistogram queue_wait(default_queue_wait_bounds_ms());
  queue_wait.observe(0.5);
  const auto bundle = make_bundle(totals, latency, queue_wait.snapshot());
  const auto* m = bundle.metrics.find("pftk_serve_queue_wait_ms");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 1u);
  EXPECT_EQ(m->bounds, default_queue_wait_bounds_ms());
}

}  // namespace
}  // namespace pftk::serve
