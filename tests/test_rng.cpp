#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/rng.hpp"

namespace pftk::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DerivedStreamsAreIndependent) {
  Rng a = Rng::derive(7, 0);
  Rng b = Rng::derive(7, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DeriveIsDeterministic) {
  Rng a = Rng::derive(7, 3);
  Rng b = Rng::derive(7, 3);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
  EXPECT_DOUBLE_EQ(r.uniform(4.0, 4.0), 4.0);
  EXPECT_THROW((void)r.uniform(3.0, 2.0), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyIsRoughlyP) {
  Rng r(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += r.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanIsRight) {
  Rng r(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += r.exponential(2.5);
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
  EXPECT_THROW((void)r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = r.uniform_int(3, 5);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 5u);
    saw_lo = saw_lo || x == 3;
    saw_hi = saw_hi || x == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW((void)r.uniform_int(5, 3), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::sim
