#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "exp/campaign/retry_policy.hpp"
#include "sim/rng.hpp"

namespace pftk::sim {
namespace {

TEST(Rng, SplitMix64IsBijectiveMixing) {
  // Deterministic, and sequential inputs land far apart.
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 64; ++x) {
    outputs.insert(splitmix64(x));
  }
  EXPECT_EQ(outputs.size(), 64u);
}

TEST(Rng, DeriveStreamSeedIsDeterministicAndWellSpread) {
  EXPECT_EQ(derive_stream_seed(7, 3), derive_stream_seed(7, 3));
  // Nearby (seed, stream) pairs must yield pairwise-distinct children —
  // the whole point of the shared derivation seam.
  std::set<std::uint64_t> children;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    for (std::uint64_t stream = 0; stream < 8; ++stream) {
      children.insert(derive_stream_seed(seed, stream));
    }
  }
  EXPECT_EQ(children.size(), 64u);
}

TEST(Rng, DeriveMatchesDeriveStreamSeed) {
  // Rng::derive is defined as seeding from derive_stream_seed; the two
  // must stay in lockstep if the mixing ever changes.
  Rng derived = Rng::derive(42, 5);
  Rng reseeded(derive_stream_seed(42, 5));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(derived.next_u64(), reseeded.next_u64());
  }
}

TEST(Rng, CampaignRetrySeedsShareTheDerivationPath) {
  // The campaign's per-attempt seed perturbation rides the same audited
  // seam (attempt 0 = the item seed itself).
  EXPECT_EQ(exp::campaign::perturbed_seed(99, 0), 99u);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    EXPECT_EQ(exp::campaign::perturbed_seed(99, attempt),
              derive_stream_seed(99, static_cast<std::uint64_t>(attempt)));
  }
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DerivedStreamsAreIndependent) {
  Rng a = Rng::derive(7, 0);
  Rng b = Rng::derive(7, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DeriveIsDeterministic) {
  Rng a = Rng::derive(7, 3);
  Rng b = Rng::derive(7, 3);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
  EXPECT_DOUBLE_EQ(r.uniform(4.0, 4.0), 4.0);
  EXPECT_THROW((void)r.uniform(3.0, 2.0), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyIsRoughlyP) {
  Rng r(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += r.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanIsRight) {
  Rng r(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += r.exponential(2.5);
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
  EXPECT_THROW((void)r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = r.uniform_int(3, 5);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 5u);
    saw_lo = saw_lo || x == 3;
    saw_hi = saw_hi || x == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW((void)r.uniform_int(5, 3), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::sim
