// Graceful degradation: one corrupt input or one pathological profile
// costs one row and one RunReport entry, never the whole batch.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "exp/robust_experiment.hpp"
#include "sim/connection.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_recorder.hpp"

namespace pftk::exp {
namespace {

PathProfile quick_profile(const std::string& receiver) {
  PathProfile profile;
  profile.sender = "testhost";
  profile.receiver = receiver;
  profile.one_way_delay = 0.05;
  profile.loss_p = 0.02;
  profile.advertised_window = 16.0;
  return profile;
}

HourTraceOptions quick_options() {
  HourTraceOptions opt;
  opt.duration = 60.0;
  opt.interval_length = 20.0;
  return opt;
}

TEST(RobustExperiment, BadProfileCostsOneRowNotTheBatch) {
  std::vector<PathProfile> profiles = {quick_profile("a"), quick_profile("bad"),
                                       quick_profile("c")};
  profiles[1].advertised_window = 0.0;  // rejected by the sender config

  RunReport report;
  const auto results = run_hour_traces_robust(profiles, quick_options(), report);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].profile.receiver, "a");
  EXPECT_EQ(results[1].profile.receiver, "c");
  EXPECT_EQ(report.attempted, 3u);
  EXPECT_EQ(report.succeeded, 2u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].label, "testhost -> bad");
  EXPECT_NE(report.failures[0].error.find("advertised_window"), std::string::npos);
  EXPECT_FALSE(report.all_ok());
  EXPECT_NE(report.describe().find("2/3"), std::string::npos);
}

TEST(RobustExperiment, WatchdogTripBecomesARecordedFailure) {
  std::vector<PathProfile> profiles = {quick_profile("a"), quick_profile("stalled")};
  HourTraceOptions opt = quick_options();
  opt.enable_watchdog = true;

  RunReport report;
  const auto clean = run_hour_traces_robust(profiles, opt, report);
  EXPECT_EQ(clean.size(), 2u);
  EXPECT_TRUE(report.all_ok());

  // A total ACK blackhole: snd_una never advances, so once elapsed time
  // outgrows stall_rtos backed-off RTOs the watchdog converts the would-be
  // endless backoff into a recorded failure. The run needs to be long
  // enough to outlast the backoff cap (2^6 * RTO).
  opt.duration = 3600.0;
  opt.reverse_faults = sim::FaultSchedule::parse("loss@0+100000:1");
  RunReport stalled_report;
  const auto stalled = run_hour_traces_robust(profiles, opt, stalled_report);
  EXPECT_TRUE(stalled.empty());
  EXPECT_EQ(stalled_report.attempted, 2u);
  EXPECT_EQ(stalled_report.failures.size(), 2u);
  EXPECT_NE(stalled_report.failures[0].error.find("no cumulative-ACK progress"),
            std::string::npos)
      << stalled_report.failures[0].error;
}

TEST(RobustExperiment, FaultStatsAggregateOverSuccessfulRuns) {
  std::vector<PathProfile> profiles = {quick_profile("a"), quick_profile("b")};
  HourTraceOptions opt = quick_options();
  opt.forward_faults = sim::FaultSchedule::parse("loss@0+60:0.2");

  RunReport report;
  const auto results = run_hour_traces_robust(profiles, opt, report);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(report.forward_faults.offered,
            results[0].forward_faults.offered + results[1].forward_faults.offered);
  EXPECT_GT(report.forward_faults.dropped_loss, 0u);
}

TEST(RobustExperiment, ShortTraceSeriesKeepsSurvivingPoints) {
  ShortTraceOptions opt;
  opt.connections = 3;
  opt.duration = 30.0;
  RunReport report;
  const auto clean = run_short_traces_robust(quick_profile("a"), opt, report);
  EXPECT_EQ(clean.size(), 3u);
  EXPECT_TRUE(report.all_ok());

  // An event budget far below what 30 s needs fails every connection —
  // each failure is recorded individually, none aborts the series.
  opt.enable_watchdog = true;
  opt.watchdog.max_events = 50;
  RunReport tripped;
  const auto none = run_short_traces_robust(quick_profile("a"), opt, tripped);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(tripped.attempted, 3u);
  ASSERT_EQ(tripped.failures.size(), 3u);
  EXPECT_NE(tripped.failures[1].label.find("trace 1"), std::string::npos);
  EXPECT_NE(tripped.failures[0].error.find("event budget"), std::string::npos)
      << tripped.failures[0].error;
}

TEST(RobustExperiment, ShortTraceFaultSchedulesApplyPerConnection) {
  ShortTraceOptions opt;
  opt.connections = 2;
  opt.duration = 30.0;
  opt.forward_faults = sim::FaultSchedule::parse("loss@0+30:0.2");
  RunReport report;
  const auto records = run_short_traces_robust(quick_profile("a"), opt, report);
  ASSERT_EQ(records.size(), 2u);
  for (const ShortTraceRecord& rec : records) {
    EXPECT_GT(rec.forward_faults.dropped_loss, 0u) << "trace " << rec.index;
  }
  EXPECT_EQ(report.forward_faults.dropped_loss,
            records[0].forward_faults.dropped_loss +
                records[1].forward_faults.dropped_loss);
}

std::string write_capture(const std::string& path, double duration,
                          const std::string& garbage_suffix) {
  sim::ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.forward_link.propagation_delay = 0.05;
  cfg.reverse_link.propagation_delay = 0.05;
  cfg.forward_loss = sim::BernoulliLossSpec{0.02};
  cfg.seed = 11;
  sim::Connection conn(cfg);
  trace::TraceRecorder rec;
  conn.set_observer(&rec);
  (void)conn.run_for(duration);
  trace::save_trace_file(path, rec.events());
  if (!garbage_suffix.empty()) {
    std::ofstream os(path, std::ios::app);
    os << garbage_suffix;
  }
  return path;
}

TEST(RobustExperiment, OneCorruptFileOfThreeYieldsPartialResults) {
  const std::string dir = testing::TempDir();
  const std::vector<std::string> paths = {
      write_capture(dir + "pftk_robust_a.tsv", 30.0, ""),
      // Valid prefix, then a disk-full signature: garbage lines and a
      // final record cut mid-field with no trailing newline.
      write_capture(dir + "pftk_robust_b.tsv", 30.0,
                    "garbage line\nX\t1\t2\t3\nS\t99.0\t12"),
      dir + "pftk_robust_missing.tsv",  // never written
  };

  RunReport report;
  const auto results = analyze_trace_files_robust(paths, 3, report);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(report.attempted, 3u);
  EXPECT_EQ(report.succeeded, 2u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].label, paths[2]);

  // The corrupt file contributed exactly its valid prefix...
  const auto pristine = trace::load_trace_file(paths[0]);
  EXPECT_EQ(results[0].summary.packets_sent, results[1].summary.packets_sent);
  EXPECT_TRUE(results[0].read_report.clean());
  // ...with exact accounting for what was cut away.
  const trace::TraceReadReport& salvage = results[1].read_report;
  EXPECT_EQ(salvage.events_parsed, pristine.size());
  EXPECT_EQ(salvage.lines_dropped, 3u);
  EXPECT_EQ(salvage.bytes_dropped,
            std::string("garbage line\n").size() + std::string("X\t1\t2\t3\n").size() +
                std::string("S\t99.0\t12").size());  // torn tail: no '\n' on disk
  EXPECT_TRUE(salvage.truncated);
  EXPECT_FALSE(salvage.clean());
}

TEST(RobustExperiment, FileWithNoSalvageableEventsIsAFailure) {
  const std::string path = testing::TempDir() + "pftk_robust_junk.tsv";
  {
    std::ofstream os(path);
    os << "not a trace at all\n<<<binary-ish>>>\n";
  }
  RunReport report;
  const auto results = analyze_trace_files_robust(std::vector<std::string>{path}, 3, report);
  EXPECT_TRUE(results.empty());
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].error.find("no trace events"), std::string::npos);
  ASSERT_EQ(report.read_reports.size(), 1u);
  EXPECT_EQ(report.read_reports[0].lines_dropped, 2u);
}

}  // namespace
}  // namespace pftk::exp
