#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/quantile.hpp"

namespace pftk::stats {
namespace {

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.0);
}

TEST(Quantile, MedianOfEvenSampleInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Quantile, ExtremesAreMinAndMax) {
  const std::vector<double> xs{5.0, -1.0, 3.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, Type7Interpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  // pos = 0.25 * 3 = 0.75 -> 10 + 0.75*(20-10) = 17.5
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 17.5);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 7.0);
}

TEST(Quantile, EmptySampleThrows) {
  const std::vector<double> xs;
  EXPECT_THROW((void)quantile(xs, 0.5), std::invalid_argument);
}

TEST(Quantile, OutOfRangeQThrows) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, 1.1), std::invalid_argument);
}

TEST(Quantile, BatchMatchesIndividual) {
  const std::vector<double> xs{4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  const std::vector<double> qs{0.1, 0.5, 0.9};
  const std::vector<double> batch = quantiles(xs, qs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], quantile(xs, qs[i]));
  }
}

}  // namespace
}  // namespace pftk::stats
