#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stats/quantile.hpp"

namespace pftk::stats {
namespace {

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.0);
}

TEST(Quantile, MedianOfEvenSampleInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Quantile, ExtremesAreMinAndMax) {
  const std::vector<double> xs{5.0, -1.0, 3.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, Type7Interpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  // pos = 0.25 * 3 = 0.75 -> 10 + 0.75*(20-10) = 17.5
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 17.5);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 7.0);
}

TEST(Quantile, EmptySampleThrows) {
  const std::vector<double> xs;
  EXPECT_THROW((void)quantile(xs, 0.5), std::invalid_argument);
}

TEST(Quantile, OutOfRangeQThrows) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, 1.1), std::invalid_argument);
}

TEST(Quantile, NonFiniteQThrows) {
  // Regression: NaN passed the old `q < 0.0 || q > 1.0` guard (every
  // NaN comparison is false) and flowed into floor() + a size_t cast —
  // undefined behaviour. Non-finite q must be rejected like any other
  // out-of-domain q.
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW((void)quantile(xs, std::nan("")), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, -std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  const std::vector<double> qs{0.5, std::nan("")};
  EXPECT_THROW((void)quantiles(xs, qs), std::invalid_argument);
}

TEST(Quantile, NonFiniteSampleValueThrows) {
  // A NaN inside the sample breaks std::sort's strict weak ordering and
  // poisons the interpolation; corrupt input must fail loudly.
  const std::vector<double> with_nan{1.0, std::nan(""), 3.0};
  EXPECT_THROW((void)quantile(with_nan, 0.5), std::invalid_argument);
  EXPECT_THROW((void)median(with_nan), std::invalid_argument);
  const std::vector<double> with_inf{1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)quantile(with_inf, 0.5), std::invalid_argument);
  const std::vector<double> qs{0.5};
  EXPECT_THROW((void)quantiles(with_nan, qs), std::invalid_argument);
}

TEST(Quantile, BatchMatchesIndividual) {
  const std::vector<double> xs{4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  const std::vector<double> qs{0.1, 0.5, 0.9};
  const std::vector<double> batch = quantiles(xs, qs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], quantile(xs, qs[i]));
  }
}

}  // namespace
}  // namespace pftk::stats
