#include <gtest/gtest.h>

#include <vector>

#include "sim/connection.hpp"
#include "trace/rtt_estimator.hpp"
#include "trace/trace_recorder.hpp"

namespace pftk::trace {
namespace {

TraceEvent send_event(double t, sim::SeqNo seq, bool rexmit, std::size_t in_flight = 1) {
  TraceEvent e;
  e.t = t;
  e.type = TraceEventType::kSegmentSent;
  e.seq = seq;
  e.retransmission = rexmit;
  e.in_flight = in_flight;
  return e;
}

TraceEvent ack_event(double t, sim::SeqNo cum) {
  TraceEvent e;
  e.t = t;
  e.type = TraceEventType::kAckReceived;
  e.seq = cum;
  return e;
}

TEST(RttEstimator, SimpleStopAndWaitSamples) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0, false));
  ev.push_back(ack_event(0.2, 1));
  ev.push_back(send_event(0.2, 1, false));
  ev.push_back(ack_event(0.5, 2));
  const RttEstimate est = estimate_rtt(ev);
  ASSERT_EQ(est.samples.count(), 2u);
  EXPECT_NEAR(est.mean_rtt(), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(est.samples.min(), 0.2);
  EXPECT_DOUBLE_EQ(est.samples.max(), 0.3);
}

TEST(RttEstimator, OnlyOneSegmentTimedAtOnce) {
  // Two segments outstanding: only the first is timed; the second send
  // while timing is active is not a new measurement.
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0, false));
  ev.push_back(send_event(0.05, 1, false));
  ev.push_back(ack_event(0.2, 2));  // acks both
  const RttEstimate est = estimate_rtt(ev);
  ASSERT_EQ(est.samples.count(), 1u);
  EXPECT_NEAR(est.mean_rtt(), 0.2, 1e-12);  // timed from seq 0
}

TEST(RttEstimator, KarnRuleCancelsOnRetransmission) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0, false));
  ev.push_back(send_event(3.0, 0, true));  // RTO retransmission
  ev.push_back(ack_event(3.2, 1));         // ambiguous: no sample
  const RttEstimate est = estimate_rtt(ev);
  EXPECT_EQ(est.samples.count(), 0u);
}

TEST(RttEstimator, AnyRetransmissionCancelsInProgressTiming) {
  // Timing seq 5 while seq 2 is retransmitted: the eventual cumulative
  // ACK covering seq 5 must not produce a (recovery-inflated) sample.
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 5, false));
  ev.push_back(send_event(0.1, 2, true));
  ev.push_back(ack_event(4.0, 6));
  const RttEstimate est = estimate_rtt(ev);
  EXPECT_EQ(est.samples.count(), 0u);
}

TEST(RttEstimator, TimingResumesAfterCancelledMeasurement) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0, false));
  ev.push_back(send_event(1.0, 0, true));
  ev.push_back(ack_event(1.2, 1));         // cancelled
  ev.push_back(send_event(1.3, 1, false)); // new timing
  ev.push_back(ack_event(1.55, 2));
  const RttEstimate est = estimate_rtt(ev);
  ASSERT_EQ(est.samples.count(), 1u);
  EXPECT_NEAR(est.mean_rtt(), 0.25, 1e-12);
}

TEST(RttEstimator, DupAcksDoNotCompleteTiming) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 3, false));
  ev.push_back(ack_event(0.1, 3));  // dup (cum == timed seq, not beyond)
  ev.push_back(ack_event(0.2, 3));
  ev.push_back(ack_event(0.4, 4));  // this one completes
  const RttEstimate est = estimate_rtt(ev);
  ASSERT_EQ(est.samples.count(), 1u);
  EXPECT_NEAR(est.mean_rtt(), 0.4, 1e-12);
}

TEST(RttEstimator, WindowCorrelationTracksInFlight) {
  // Construct samples where RTT grows with the in-flight count.
  std::vector<TraceEvent> ev;
  double t = 0.0;
  for (int w = 1; w <= 20; ++w) {
    ev.push_back(send_event(t, static_cast<sim::SeqNo>(w - 1), false,
                            static_cast<std::size_t>(w)));
    t += 0.1 + 0.01 * w;
    ev.push_back(ack_event(t, static_cast<sim::SeqNo>(w)));
    t += 0.01;
  }
  const RttEstimate est = estimate_rtt(ev);
  EXPECT_EQ(est.samples.count(), 20u);
  EXPECT_GT(est.correlation(), 0.95);
}

TEST(RttEstimator, SimulatedTraceMatchesSenderEstimate) {
  sim::ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.forward_link.propagation_delay = 0.1;
  cfg.reverse_link.propagation_delay = 0.1;
  cfg.forward_loss = sim::BernoulliLossSpec{0.01};
  cfg.seed = 17;
  sim::Connection conn(cfg);
  TraceRecorder rec;
  conn.set_observer(&rec);
  conn.run_for(300.0);

  const RttEstimate est = estimate_rtt(rec.events());
  EXPECT_GT(est.samples.count(), 50u);
  // Propagation RTT is 0.2; samples sit between that and ~0.2 + delack.
  EXPECT_GE(est.samples.min(), 0.199);
  EXPECT_NEAR(est.mean_rtt(), 0.22, 0.05);
  // Ordinary path: |correlation| small (Section IV).
  EXPECT_LT(std::abs(est.correlation()), 0.3);
}

TEST(RttEstimator, EmptyTraceYieldsNoSamples) {
  const std::vector<TraceEvent> ev;
  const RttEstimate est = estimate_rtt(ev);
  EXPECT_EQ(est.samples.count(), 0u);
  EXPECT_EQ(est.mean_rtt(), 0.0);
  EXPECT_EQ(est.correlation(), 0.0);
}

}  // namespace
}  // namespace pftk::trace
