#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/running_stats.hpp"

namespace pftk::stats {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Welford should not lose the small variance under a huge mean.
  RunningStats s;
  const double base = 1e9;
  for (const double x : {base + 1.0, base + 2.0, base + 3.0}) {
    s.add(x);
  }
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace pftk::stats
