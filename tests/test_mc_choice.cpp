// Choice-point plumbing for the bounded model checker: token/path
// round-trips, ScriptedChoices prefix verification + fresh-node hook
// verdicts, ReplayChoices strictness, and digest hex round-trips.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "mc/choice.hpp"
#include "mc/digest.hpp"

namespace pftk::mc {
namespace {

TEST(ChoiceKindTokens, RoundTrip) {
  for (const ChoiceKind kind :
       {ChoiceKind::kForwardLoss, ChoiceKind::kAckLoss, ChoiceKind::kTieBreak,
        ChoiceKind::kFaultOrder}) {
    EXPECT_EQ(choice_kind_from_token(choice_kind_token(kind)), kind);
  }
  EXPECT_THROW((void)choice_kind_from_token('X'), std::invalid_argument);
}

TEST(ChoiceEncoding, PathRoundTrips) {
  const std::vector<Choice> path{
      {ChoiceKind::kForwardLoss, 1, 2},
      {ChoiceKind::kAckLoss, 0, 2},
      {ChoiceKind::kTieBreak, 2, 3},
      {ChoiceKind::kFaultOrder, 1, 2},
  };
  const std::string text = encode_choices(path);
  EXPECT_EQ(text, "F1 A0 T2/3 O1/2");
  EXPECT_EQ(decode_choices(text), path);
  EXPECT_TRUE(decode_choices("").empty());
  EXPECT_EQ(encode_choices({}), "");
}

TEST(ChoiceEncoding, RejectsMalformedTokens) {
  for (const char* bad :
       {"Z1", "F", "F9x", "T2", "T2/", "T2/1", "T3/3", "O1/2junk", "F1/2",
        "A0/3", "T1/99999999999"}) {
    EXPECT_THROW((void)decode_choices(bad), std::invalid_argument)
        << "token: " << bad;
  }
}

TEST(ScriptedChoices, ExtendsWithDefaultsAndRecordsArity) {
  ScriptedChoices source({});
  EXPECT_EQ(source.choose(ChoiceKind::kForwardLoss, 2), 0u);
  EXPECT_EQ(source.choose(ChoiceKind::kTieBreak, 3), 0u);
  ASSERT_EQ(source.path().size(), 2u);
  EXPECT_EQ(source.path()[0], (Choice{ChoiceKind::kForwardLoss, 0, 2}));
  EXPECT_EQ(source.path()[1], (Choice{ChoiceKind::kTieBreak, 0, 3}));
  EXPECT_FALSE(source.truncated());
}

TEST(ScriptedChoices, ReplaysPrefixThenExtends) {
  ScriptedChoices source({{ChoiceKind::kForwardLoss, 1, 2}});
  EXPECT_EQ(source.choose(ChoiceKind::kForwardLoss, 2), 1u);
  EXPECT_EQ(source.choose(ChoiceKind::kAckLoss, 2), 0u);
  EXPECT_EQ(source.prefix_length(), 1u);
  ASSERT_EQ(source.path().size(), 2u);
  EXPECT_EQ(source.path()[0].chosen, 1u);
}

TEST(ScriptedChoices, PrefixMismatchDiverges) {
  // The simulation asks a different question than the prefix recorded:
  // stateless re-execution has gone non-deterministic. Kind mismatch...
  ScriptedChoices kind_mismatch({{ChoiceKind::kForwardLoss, 0, 2}});
  EXPECT_THROW((void)kind_mismatch.choose(ChoiceKind::kTieBreak, 2),
               ChoiceDivergence);
  // ...and arity mismatch both must be caught.
  ScriptedChoices arity_mismatch({{ChoiceKind::kTieBreak, 0, 3}});
  EXPECT_THROW((void)arity_mismatch.choose(ChoiceKind::kTieBreak, 4),
               ChoiceDivergence);
}

TEST(ScriptedChoices, HookSeesFreshNodesOnly) {
  std::vector<std::size_t> depths;
  ScriptedChoices source({{ChoiceKind::kForwardLoss, 1, 2}});
  source.set_hook([&](ChoiceKind, std::size_t, std::size_t depth) {
    depths.push_back(depth);
    return NodeVerdict::kExplore;
  });
  (void)source.choose(ChoiceKind::kForwardLoss, 2);  // prefix: no hook
  (void)source.choose(ChoiceKind::kAckLoss, 2);      // fresh: depth 1
  (void)source.choose(ChoiceKind::kAckLoss, 2);      // fresh: depth 2
  EXPECT_EQ(depths, (std::vector<std::size_t>{1, 2}));
}

TEST(ScriptedChoices, PruneVerdictThrowsBranchPruned) {
  ScriptedChoices source({});
  source.set_hook([](ChoiceKind, std::size_t, std::size_t) {
    return NodeVerdict::kPrune;
  });
  EXPECT_THROW((void)source.choose(ChoiceKind::kForwardLoss, 2), BranchPruned);
}

TEST(ScriptedChoices, TruncateStopsRecordingAndConsultation) {
  int hook_calls = 0;
  ScriptedChoices source({});
  source.set_hook([&](ChoiceKind, std::size_t, std::size_t depth) {
    ++hook_calls;
    return depth >= 1 ? NodeVerdict::kTruncate : NodeVerdict::kExplore;
  });
  EXPECT_EQ(source.choose(ChoiceKind::kForwardLoss, 2), 0u);  // explored
  EXPECT_EQ(source.choose(ChoiceKind::kForwardLoss, 2), 0u);  // truncates
  EXPECT_EQ(source.choose(ChoiceKind::kTieBreak, 5), 0u);     // no hook now
  EXPECT_TRUE(source.truncated());
  EXPECT_EQ(hook_calls, 2);
  // Only the explored node was recorded; the truncated tail is not part
  // of the path (its subtree was never enumerated).
  EXPECT_EQ(source.path().size(), 1u);
}

TEST(ReplayChoices, FollowsTraceExactly) {
  ReplayChoices source({{ChoiceKind::kForwardLoss, 1, 2},
                        {ChoiceKind::kTieBreak, 2, 3}});
  EXPECT_FALSE(source.done());
  EXPECT_EQ(source.choose(ChoiceKind::kForwardLoss, 2), 1u);
  EXPECT_EQ(source.choose(ChoiceKind::kTieBreak, 3), 2u);
  EXPECT_TRUE(source.done());
  EXPECT_EQ(source.consumed(), 2u);
}

TEST(ReplayChoices, DivergesOnMismatchOrExhaustion) {
  ReplayChoices kind_mismatch({{ChoiceKind::kForwardLoss, 0, 2}});
  EXPECT_THROW((void)kind_mismatch.choose(ChoiceKind::kAckLoss, 2),
               ChoiceDivergence);
  ReplayChoices arity_mismatch({{ChoiceKind::kTieBreak, 0, 3}});
  EXPECT_THROW((void)arity_mismatch.choose(ChoiceKind::kTieBreak, 2),
               ChoiceDivergence);
  ReplayChoices exhausted({});
  EXPECT_THROW((void)exhausted.choose(ChoiceKind::kForwardLoss, 2),
               ChoiceDivergence);
  // A trace recorded with a now-impossible index (e.g. hand-edited).
  ReplayChoices out_of_range({{ChoiceKind::kTieBreak, 3, 4}});
  EXPECT_THROW((void)out_of_range.choose(ChoiceKind::kTieBreak, 3),
               ChoiceDivergence);
}

TEST(McDigest, HexRoundTripsAndRejectsGarbage) {
  DigestBuilder builder;
  builder.add_u64(42);
  builder.add_double(0.125);
  builder.add_bool(true);
  const McDigest digest = builder.finish();
  const std::string hex = digest.hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(McDigest::from_hex(hex), digest);
  EXPECT_THROW((void)McDigest::from_hex("short"), std::invalid_argument);
  EXPECT_THROW((void)McDigest::from_hex(std::string(32, 'z')),
               std::invalid_argument);
}

TEST(McDigest, OrderAndValueSensitive) {
  DigestBuilder a;
  a.add_u64(1);
  a.add_u64(2);
  DigestBuilder b;
  b.add_u64(2);
  b.add_u64(1);
  EXPECT_NE(a.finish(), b.finish());
  DigestBuilder c;
  c.add_u64(1);
  c.add_u64(2);
  DigestBuilder d;
  d.add_u64(1);
  d.add_u64(2);
  EXPECT_EQ(c.finish(), d.finish());
}

}  // namespace
}  // namespace pftk::mc
