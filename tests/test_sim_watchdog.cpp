// The watchdog's contract: budgets and stalls become diagnostic
// WatchdogErrors, clean runs are never disturbed, and a 100% ACK-loss
// blackhole — which would otherwise back off forever — fails fast with a
// snapshot instead of hanging.
#include <gtest/gtest.h>

#include <string>

#include "sim/connection.hpp"
#include "sim/sim_watchdog.hpp"

namespace pftk::sim {
namespace {

ConnectionConfig base_config() {
  ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.forward_link.propagation_delay = 0.05;
  cfg.reverse_link.propagation_delay = 0.05;
  cfg.seed = 7;
  return cfg;
}

TEST(SimWatchdog, CleanRunNeverTrips) {
  ConnectionConfig cfg = base_config();
  cfg.forward_loss = BernoulliLossSpec{0.02};
  Connection conn(cfg);
  conn.enable_watchdog();
  EXPECT_NO_THROW((void)conn.run_for(300.0));
}

TEST(SimWatchdog, EventBudgetTrips) {
  Connection conn(base_config());
  WatchdogConfig wd;
  wd.max_events = 100;
  conn.enable_watchdog(wd);
  try {
    (void)conn.run_for(60.0);
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("event budget"), std::string::npos)
        << e.what();
    EXPECT_GE(e.snapshot().executed, 100u);
  }
}

TEST(SimWatchdog, SimTimeBudgetTrips) {
  Connection conn(base_config());
  WatchdogConfig wd;
  wd.max_sim_time = 5.0;
  conn.enable_watchdog(wd);
  try {
    (void)conn.run_for(60.0);
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    EXPECT_GE(e.snapshot().now, 5.0);
    EXPECT_LT(e.snapshot().now, 60.0);
  }
}

TEST(SimWatchdog, TotalAckLossBecomesDiagnosticFailureNotAHang) {
  // With every ACK destroyed the sender can never advance snd_una; it
  // would back off (bounded) forever. The watchdog must convert that
  // into a stall diagnosis carrying the connection snapshot.
  ConnectionConfig cfg = base_config();
  cfg.reverse_faults = FaultSchedule::parse("loss@0+100000:1");
  Connection conn(cfg);
  WatchdogConfig wd;
  wd.stall_rtos = 4.0;
  conn.enable_watchdog(wd);
  try {
    (void)conn.run_for(100000.0);
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("no cumulative-ACK progress"),
              std::string::npos)
        << e.what();
    EXPECT_EQ(e.snapshot().snd_una, 0u);
    EXPECT_GT(e.snapshot().consecutive_timeouts, 0);
    EXPECT_FALSE(e.snapshot().describe().empty());
  }
}

TEST(SimWatchdog, StallThresholdScalesWithBackoff) {
  // A long but finite blackout drives deep exponential backoff; because
  // the stall threshold scales with the *backed-off* RTO, the default
  // watchdog lets the connection ride it out and recover.
  ConnectionConfig cfg = base_config();
  cfg.forward_faults = FaultSchedule::parse("blackout@10+20");
  Connection conn(cfg);
  conn.enable_watchdog();
  ConnectionSummary s{};
  EXPECT_NO_THROW(s = conn.run_for(120.0));
  EXPECT_GT(s.timeouts, 0u);
  EXPECT_GT(s.packets_delivered, 100u);  // recovered after the outage
}

TEST(SimWatchdog, WallClockDeadlineTrips) {
  // An absurdly tight wall budget trips on the first inspector check, no
  // matter how healthy the simulated connection is.
  Connection conn(base_config());
  WatchdogConfig wd;
  wd.max_wall_time = 1e-9;
  conn.enable_watchdog(wd);
  try {
    (void)conn.run_for(60.0);
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("wall-clock deadline"), std::string::npos)
        << e.what();
    EXPECT_TRUE(e.snapshot().wall_deadline);
  }
}

TEST(SimWatchdog, ZeroWallBudgetDisablesTheDeadline) {
  Connection conn(base_config());
  WatchdogConfig wd;  // max_wall_time defaults to 0 = off
  conn.enable_watchdog(wd);
  EXPECT_NO_THROW((void)conn.run_for(30.0));
}

TEST(SimWatchdog, DisarmedWatchdogNeverFires) {
  ConnectionConfig cfg = base_config();
  Connection conn(cfg);
  WatchdogConfig wd;
  wd.max_events = 10;
  // enable_watchdog arms it; a second run after the first trip would
  // re-trip, but run_for on a fresh connection without the watchdog
  // enabled must be unaffected by watchdogs on other connections.
  Connection other(cfg);
  other.enable_watchdog(wd);
  EXPECT_THROW((void)other.run_for(60.0), WatchdogError);
  EXPECT_NO_THROW((void)conn.run_for(1.0));
}

TEST(SimWatchdog, RejectsZeroCheckInterval) {
  EventQueue queue;
  EXPECT_THROW(queue.set_inspector([] {}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::sim
