// Round-trip and validation tests for the trace file format.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/connection.hpp"
#include "trace/loss_classifier.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/trace_validator.hpp"
#include "robust/durable_file.hpp"

namespace pftk::trace {
namespace {

std::vector<TraceEvent> simulated_trace() {
  sim::ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.forward_link.propagation_delay = 0.08;
  cfg.reverse_link.propagation_delay = 0.08;
  cfg.forward_loss = sim::BernoulliLossSpec{0.02};
  cfg.sender.min_rto = 1.0;
  cfg.seed = 77;
  sim::Connection conn(cfg);
  TraceRecorder rec;
  conn.set_observer(&rec);
  conn.run_for(120.0);
  return rec.events();
}

TEST(TraceIo, RoundTripPreservesEveryEvent) {
  const std::vector<TraceEvent> original = simulated_trace();
  ASSERT_GT(original.size(), 100u);

  std::stringstream buffer;
  write_trace(buffer, original);
  const std::vector<TraceEvent> reloaded = read_trace(buffer);

  ASSERT_EQ(reloaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reloaded[i].type, original[i].type) << "event " << i;
    EXPECT_NEAR(reloaded[i].t, original[i].t, 1e-9) << "event " << i;
    EXPECT_EQ(reloaded[i].seq, original[i].seq) << "event " << i;
    EXPECT_EQ(reloaded[i].retransmission, original[i].retransmission) << "event " << i;
    EXPECT_EQ(reloaded[i].duplicate, original[i].duplicate) << "event " << i;
    EXPECT_EQ(reloaded[i].consecutive, original[i].consecutive) << "event " << i;
    EXPECT_EQ(reloaded[i].in_flight, original[i].in_flight) << "event " << i;
  }
}

TEST(TraceIo, AnalysisIsIdenticalOnReloadedTrace) {
  const std::vector<TraceEvent> original = simulated_trace();
  std::stringstream buffer;
  write_trace(buffer, original);
  const std::vector<TraceEvent> reloaded = read_trace(buffer);

  const LossAnalysis a = analyze_losses(original, 3);
  const LossAnalysis b = analyze_losses(reloaded, 3);
  EXPECT_EQ(a.total_indications(), b.total_indications());
  EXPECT_EQ(a.td_count, b.td_count);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
}

TEST(TraceIo, CommentsAndBlankLinesAreSkipped) {
  std::stringstream buffer;
  buffer << "# header\n\nS\t0.5\t0\t0\t1\t1.0\n# trailing comment\n";
  const auto events = read_trace(buffer);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kSegmentSent);
  EXPECT_NEAR(events[0].t, 0.5, 1e-12);
}

TEST(TraceIo, MalformedLinesAreRejectedWithLineNumbers) {
  {
    std::stringstream buffer("S\t0.5\t0\n");  // truncated S record
    EXPECT_THROW((void)read_trace(buffer), std::invalid_argument);
  }
  {
    std::stringstream buffer("X\t0.5\t0\t0\n");  // unknown tag
    try {
      (void)read_trace(buffer);
      FAIL() << "expected an exception";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
    }
  }
}

TEST(TraceIo, FileWrappersRejectBadPaths) {
  EXPECT_THROW((void)load_trace_file("/nonexistent/dir/trace.txt"),
               std::invalid_argument);
  EXPECT_THROW(save_trace_file("/nonexistent/dir/trace.txt", {}), pftk::robust::IoError);
  EXPECT_THROW((void)load_trace_file_lenient("/nonexistent/dir/trace.txt"),
               std::invalid_argument);
}

// Fuzz-style table of corrupt single lines: strict must throw, lenient
// must skip exactly that line and say why.
TEST(TraceIo, MalformedLineTable) {
  const struct {
    const char* name;
    std::string line;
  } cases[] = {
      {"truncated S record", "S\t0.5\t0"},
      {"truncated A record", "A\t0.5\t1"},
      {"unknown tag", "X\t0.5\t0\t0"},
      {"binary garbage", "\x01\x02\xff\xfe"},
      {"negative timestamp", "S\t-1.0\t0\t0\t1\t1.0"},
      {"huge timestamp", "S\t1e15\t0\t0\t1\t1.0"},
      {"negative seq wraps to huge", "A\t0.5\t-3\t0"},
      {"timeout depth out of range", "T\t0.5\t0\t99\t1.0"},
      {"cwnd out of range", "S\t0.5\t0\t0\t1\t1e300"},
      {"non-numeric field", "S\t0.5\tzero\t0\t1\t1.0"},
      {"embedded NUL", std::string("S\t0.5\t0\t0\t1\t1.0").insert(3, 1, '\0')},
  };
  const std::string good = "S\t0.1\t0\t0\t1\t1.000000000\n";
  for (const auto& c : cases) {
    const std::string content = good + c.line + "\n" + good;
    {
      std::istringstream strict(content);
      EXPECT_THROW((void)read_trace(strict), std::invalid_argument) << c.name;
    }
    std::istringstream lenient(content);
    TraceReadReport report;
    const auto events = read_trace_lenient(lenient, &report);
    EXPECT_EQ(events.size(), 2u) << c.name;
    EXPECT_EQ(report.lines_total, 3u) << c.name;
    EXPECT_EQ(report.events_parsed, 2u) << c.name;
    EXPECT_EQ(report.lines_dropped, 1u) << c.name;
    EXPECT_EQ(report.bytes_dropped, c.line.size() + 1) << c.name;
    EXPECT_EQ(report.first_error_line, 2u) << c.name;
    EXPECT_FALSE(report.first_error.empty()) << c.name;
    EXPECT_FALSE(report.clean()) << c.name;
    EXPECT_FALSE(report.truncated) << c.name;
  }
}

TEST(TraceIo, LenientRecoversTheValidPrefixExactly) {
  const std::vector<TraceEvent> original = simulated_trace();
  std::stringstream buffer;
  write_trace(buffer, original);
  // Simulate disk-full corruption: garbage, then a record cut mid-field
  // with no trailing newline.
  buffer << "%%% corrupted tail %%%\nS\t99.0\t12";

  TraceReadReport report;
  const auto events = read_trace_lenient(buffer, &report);
  ASSERT_EQ(events.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(events[i].seq, original[i].seq) << "event " << i;
  }
  EXPECT_EQ(report.events_parsed, original.size());
  EXPECT_EQ(report.lines_dropped, 2u);
  // The torn final line has no newline on disk, so exactly its own
  // bytes are charged — no phantom terminator.
  EXPECT_EQ(report.bytes_dropped, std::string("%%% corrupted tail %%%\n").size() +
                                      std::string("S\t99.0\t12").size());
  EXPECT_TRUE(report.truncated);
}

TEST(TraceIo, TruncationRequiresAnUnterminatedBadFinalLine) {
  {
    // Unterminated but parseable final line: the event is salvaged and
    // `truncated` stays false, but a mid-record cut whose surviving
    // prefix is field-complete looks identical — so the report flags
    // the last event as suspect and the read is not clean.
    std::istringstream is("S\t0.5\t0\t0\t1\t1.0\nA\t0.6\t1\t0");
    TraceReadReport report;
    const auto events = read_trace_lenient(is, &report);
    EXPECT_EQ(events.size(), 2u);
    EXPECT_FALSE(report.truncated);
    EXPECT_TRUE(report.suspect_final_event);
    EXPECT_FALSE(report.clean());
  }
  {
    // Terminated bad line mid-file: corruption, but not truncation.
    std::istringstream is("junk\nS\t0.5\t0\t0\t1\t1.0\n");
    TraceReadReport report;
    (void)read_trace_lenient(is, &report);
    EXPECT_FALSE(report.truncated);
    EXPECT_EQ(report.lines_dropped, 1u);
  }
}

TEST(TraceIo, CrlfLineEndingsAreTolerated) {
  std::istringstream is("# dos capture\r\nS\t0.5\t0\t0\t1\t1.0\r\n");
  TraceReadReport report;
  const auto events = read_trace_lenient(is, &report);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].t, 0.5, 1e-12);
  EXPECT_TRUE(report.clean());
}

TEST(TraceIo, LenientReportDescribesItself) {
  std::istringstream is("S\t0.5\t0\t0\t1\t1.0\njunk\n");
  TraceReadReport report;
  (void)read_trace_lenient(is, &report);
  const std::string text = report.describe();
  EXPECT_NE(text.find("dropped 1"), std::string::npos) << text;
  EXPECT_NE(text.find("line 2"), std::string::npos) << text;
}

TEST(TraceIo, LenientMatchesStrictOnCleanInput) {
  const std::vector<TraceEvent> original = simulated_trace();
  std::stringstream buffer;
  write_trace(buffer, original);
  const std::string content = buffer.str();

  std::istringstream strict_in(content);
  std::istringstream lenient_in(content);
  TraceReadReport report;
  const auto strict_events = read_trace(strict_in);
  const auto lenient_events = read_trace_lenient(lenient_in, &report);
  ASSERT_EQ(lenient_events.size(), strict_events.size());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.events_parsed, strict_events.size());
}

TEST(TraceValidator, CleanSimulatedTraceValidates) {
  const TraceValidation report = validate_trace(simulated_trace());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front().message);
}

TEST(TraceValidator, CatchesRegressingTimestamps) {
  std::vector<TraceEvent> ev(2);
  ev[0].type = TraceEventType::kSegmentSent;
  ev[0].t = 1.0;
  ev[1].type = TraceEventType::kSegmentSent;
  ev[1].t = 0.5;
  ev[1].seq = 1;
  const TraceValidation report = validate_trace(ev);
  EXPECT_FALSE(report.ok());
}

TEST(TraceValidator, CatchesRetransmissionOfUnsentData) {
  std::vector<TraceEvent> ev(1);
  ev[0].type = TraceEventType::kSegmentSent;
  ev[0].seq = 5;
  ev[0].retransmission = true;
  EXPECT_FALSE(validate_trace(ev).ok());
}

TEST(TraceValidator, CatchesOutOfOrderFirstTransmissions) {
  std::vector<TraceEvent> ev(1);
  ev[0].type = TraceEventType::kSegmentSent;
  ev[0].seq = 3;  // first send must be seq 0
  EXPECT_FALSE(validate_trace(ev).ok());
}

TEST(TraceValidator, CatchesAckOfUnsentData) {
  std::vector<TraceEvent> ev(2);
  ev[0].type = TraceEventType::kSegmentSent;
  ev[0].seq = 0;
  ev[1].type = TraceEventType::kAckReceived;
  ev[1].t = 0.1;
  ev[1].seq = 10;
  EXPECT_FALSE(validate_trace(ev).ok());
}

TEST(TraceValidator, CatchesBadTimeoutAndRttRecords) {
  std::vector<TraceEvent> ev(2);
  ev[0].type = TraceEventType::kTimeout;
  ev[0].consecutive = 0;
  ev[0].value = -1.0;
  ev[1].type = TraceEventType::kRttSample;
  ev[1].value = 0.0;
  const TraceValidation report = validate_trace(ev);
  EXPECT_GE(report.violations.size(), 3u);
}

TEST(TraceValidator, EmptyTraceIsValid) {
  EXPECT_TRUE(validate_trace({}).ok());
}

}  // namespace
}  // namespace pftk::trace
