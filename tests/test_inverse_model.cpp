#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/full_model.hpp"
#include "core/inverse_model.hpp"

namespace pftk::model {
namespace {

ModelParams base() {
  ModelParams mp;
  mp.rtt = 0.2;
  mp.t0 = 2.0;
  mp.b = 2;
  mp.wm = 32.0;
  return mp;
}

TEST(MaxLossForRate, RoundTripsThroughTheForwardModel) {
  ModelParams mp = base();
  for (const double p : {0.005, 0.02, 0.08}) {
    mp.p = p;
    const double rate = full_model_send_rate(mp);
    const double recovered = max_loss_for_rate(base(), rate);
    EXPECT_NEAR(recovered / p, 1.0, 1e-6) << "p=" << p;
  }
}

TEST(MaxLossForRate, UnreachableTargetIsZero) {
  // Ceiling is Wm/RTT = 160 pkts/s; asking for more is impossible.
  EXPECT_EQ(max_loss_for_rate(base(), 200.0), 0.0);
}

TEST(MaxLossForRate, TrivialTargetToleratesHeavyLoss) {
  const double p = max_loss_for_rate(base(), 0.001);
  EXPECT_GT(p, 0.5);
}

TEST(MaxLossForRate, MonotoneInTarget) {
  double prev = 1.0;
  for (const double target : {1.0, 5.0, 20.0, 80.0, 150.0}) {
    const double p = max_loss_for_rate(base(), target);
    EXPECT_LE(p, prev + 1e-12) << "target=" << target;
    prev = p;
  }
}

TEST(RequiredWindowForRate, RoundTripsInWindowLimitedRegime) {
  // Pick a target below the loss-limited rate so a finite window exists;
  // forward-evaluating at the returned window must reach the target.
  ModelParams mp = base();
  mp.p = 0.001;  // loss-limited rate is high
  const double target = 100.0;
  const double wm = required_window_for_rate(mp, target);
  ASSERT_TRUE(std::isfinite(wm));
  mp.wm = wm;
  EXPECT_GE(full_model_send_rate(mp), target * 0.999);
  // And a slightly smaller window must miss it.
  mp.wm = wm * 0.95;
  EXPECT_LT(full_model_send_rate(mp), target);
}

TEST(RequiredWindowForRate, LossLimitedTargetIsInfinite) {
  ModelParams mp = base();
  mp.p = 0.05;  // loss-limited around 9 pkts/s
  EXPECT_TRUE(std::isinf(required_window_for_rate(mp, 50.0)));
}

TEST(RequiredWindowForRate, TinyTargetNeedsMinimalWindow) {
  ModelParams mp = base();
  mp.p = 0.01;
  EXPECT_DOUBLE_EQ(required_window_for_rate(mp, 0.01), 1.0);
}

TEST(InverseModel, RejectsBadTargets) {
  EXPECT_THROW((void)max_loss_for_rate(base(), 0.0), std::invalid_argument);
  ModelParams mp = base();
  mp.p = 0.01;
  EXPECT_THROW((void)required_window_for_rate(mp, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::model
