// The connection-event trace's contract: a fixed-capacity ring that
// counts what it overwrites, emitters that mirror the sender's own
// counters exactly (TD = fast retransmits, RTO fires = timeouts), and —
// the tentpole guarantee — attaching observability never changes what a
// fixed-seed simulation does.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "obs/conn_event_trace.hpp"
#include "obs/event_loop_stats.hpp"
#include "sim/connection.hpp"

namespace pftk::obs {
namespace {

TEST(ConnEventTrace, RingWrapsOverwritingOldestAndCountsDrops) {
  ConnEventTrace trace(4);
  for (int i = 0; i < 6; ++i) {
    trace.record(static_cast<double>(i), ConnEventKind::kCwndUpdate,
                 static_cast<double>(i));
  }
  EXPECT_EQ(trace.capacity(), 4u);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 2u);
  EXPECT_EQ(trace.recorded(), 6u);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest first: records 2..5 survive, 0 and 1 were overwritten.
    EXPECT_DOUBLE_EQ(events[i].t, static_cast<double>(i + 2));
  }
}

TEST(ConnEventTrace, ExactlyCapacityEventsDropNothing) {
  // The wraparound boundary itself: filling the ring to exactly its
  // capacity must keep every record and report zero drops.
  ConnEventTrace trace(4);
  for (int i = 0; i < 4; ++i) {
    trace.record(static_cast<double>(i), ConnEventKind::kCwndUpdate,
                 static_cast<double>(i));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.recorded(), 4u);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].t, static_cast<double>(i));
  }
}

TEST(ConnEventTrace, CapacityPlusOneDropsExactlyTheOldest) {
  // One past the boundary: precisely one drop, and it is record 0 — a
  // fencepost slip in the modulo arithmetic would evict the wrong slot
  // or miscount.
  ConnEventTrace trace(4);
  for (int i = 0; i < 5; ++i) {
    trace.record(static_cast<double>(i), ConnEventKind::kCwndUpdate,
                 static_cast<double>(i));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 1u);
  EXPECT_EQ(trace.recorded(), 5u);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].t, static_cast<double>(i + 1));
  }
}

TEST(ConnEventTrace, CountAndClear) {
  ConnEventTrace trace(8);
  trace.record(0.0, ConnEventKind::kSlowStartEnter);
  trace.record(1.0, ConnEventKind::kRtoFire, 1.0);
  trace.record(2.0, ConnEventKind::kRtoFire, 2.0);
  EXPECT_EQ(trace.count(ConnEventKind::kRtoFire), 2u);
  EXPECT_EQ(trace.count(ConnEventKind::kFastRetransmit), 0u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.capacity(), 8u);
}

TEST(ConnEventTrace, ZeroCapacityIsRejected) {
  EXPECT_THROW(ConnEventTrace trace(0), std::invalid_argument);
}

TEST(ConnEventTrace, EveryKindHasAStableNameRoundTrip) {
  for (int k = 0; k <= static_cast<int>(ConnEventKind::kTfrcNoFeedback); ++k) {
    const auto kind = static_cast<ConnEventKind>(k);
    const auto name = conn_event_name(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(conn_event_from_name(name), kind) << name;
  }
  EXPECT_THROW((void)conn_event_from_name("not_a_kind"), std::invalid_argument);
}

sim::ConnectionConfig lossy_config(std::uint64_t seed) {
  sim::ConnectionConfig config;
  config.sender.advertised_window = 16.0;
  config.forward_link.propagation_delay = 0.05;
  config.reverse_link.propagation_delay = 0.05;
  config.forward_loss = sim::BernoulliLossSpec{0.03};
  config.seed = seed;
  return config;
}

TEST(ConnEventTrace, SenderEmissionsMatchTheSendersOwnCounters) {
  // The summarize cross-check only works if the event stream and the
  // stats block count the same things: TD indications are exactly the
  // fast-retransmit events, timeout events exactly the RTO fires.
  sim::Connection conn(lossy_config(71));
  ConnEventTrace trace;
  conn.attach_observability(&trace);
  (void)conn.run_for(120.0);

  const auto& stats = conn.sender().stats();
  EXPECT_GT(stats.fast_retransmits + stats.timeouts, 0u);  // losses happened
  EXPECT_EQ(trace.count(ConnEventKind::kFastRetransmit), stats.fast_retransmits);
  EXPECT_EQ(trace.count(ConnEventKind::kRtoFire), stats.timeouts);
  EXPECT_EQ(trace.dropped(), 0u);
  // Every loss indication re-estimates ssthresh.
  EXPECT_EQ(trace.count(ConnEventKind::kSsthreshUpdate),
            stats.fast_retransmits + stats.timeouts);
}

TEST(ConnEventTrace, AttachingObservabilityIsBehavioruallyInvisible) {
  // Fixed seed, same config: a run with the full observability stack
  // attached must produce exactly the run a bare simulation produces.
  sim::Connection bare(lossy_config(7));
  const auto plain = bare.run_for(90.0);

  sim::Connection observed(lossy_config(7));
  ConnEventTrace trace;
  EventLoopStats loop;
  observed.attach_observability(&trace, &loop);
  const auto obs_run = observed.run_for(90.0);

  EXPECT_EQ(plain.packets_sent, obs_run.packets_sent);
  EXPECT_EQ(plain.packets_delivered, obs_run.packets_delivered);
  EXPECT_EQ(plain.retransmissions, obs_run.retransmissions);
  EXPECT_EQ(plain.fast_retransmits, obs_run.fast_retransmits);
  EXPECT_EQ(plain.timeouts, obs_run.timeouts);
  EXPECT_DOUBLE_EQ(plain.duration, obs_run.duration);
  EXPECT_GT(loop.executed, 0u);
  EXPECT_GE(loop.scheduled, loop.executed);
}

TEST(ConnEventTrace, FixedSeedYieldsAByteIdenticalEventStream) {
  std::vector<ConnEvent> first;
  for (int round = 0; round < 2; ++round) {
    sim::Connection conn(lossy_config(1998));
    ConnEventTrace trace;
    conn.attach_observability(&trace);
    (void)conn.run_for(60.0);
    const auto events = trace.events();
    ASSERT_FALSE(events.empty());
    if (round == 0) {
      first = events;
      continue;
    }
    ASSERT_EQ(events.size(), first.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].kind, first[i].kind);
      EXPECT_DOUBLE_EQ(events[i].t, first[i].t);
      EXPECT_DOUBLE_EQ(events[i].value, first[i].value);
      EXPECT_DOUBLE_EQ(events[i].aux, first[i].aux);
    }
  }
}

TEST(ConnEventTrace, DetachingStopsRecording) {
  sim::Connection conn(lossy_config(5));
  ConnEventTrace trace;
  conn.attach_observability(&trace);
  (void)conn.run_for(10.0);
  const std::size_t recorded = trace.size();
  ASSERT_GT(recorded, 0u);
  conn.attach_observability(nullptr, nullptr);
  (void)conn.run_for(10.0);
  EXPECT_EQ(trace.size(), recorded);
}

}  // namespace
}  // namespace pftk::obs
