// Classification of TD vs. timeout-sequence loss indications, both from
// synthetic event streams (exact expectations) and from real simulation
// traces (cross-checked against the sender's ground truth).
#include <gtest/gtest.h>

#include <vector>

#include "sim/connection.hpp"
#include "trace/loss_classifier.hpp"
#include "trace/trace_recorder.hpp"

namespace pftk::trace {
namespace {

TraceEvent send_event(double t, sim::SeqNo seq, bool rexmit) {
  TraceEvent e;
  e.t = t;
  e.type = TraceEventType::kSegmentSent;
  e.seq = seq;
  e.retransmission = rexmit;
  return e;
}

TraceEvent ack_event(double t, sim::SeqNo cum) {
  TraceEvent e;
  e.t = t;
  e.type = TraceEventType::kAckReceived;
  e.seq = cum;
  return e;
}

TEST(LossClassifier, CleanTraceHasNoIndications) {
  std::vector<TraceEvent> ev;
  for (int i = 0; i < 10; ++i) {
    ev.push_back(send_event(0.1 * i, static_cast<sim::SeqNo>(i), false));
    ev.push_back(ack_event(0.1 * i + 0.2, static_cast<sim::SeqNo>(i + 1)));
  }
  const LossAnalysis a = analyze_losses(ev);
  EXPECT_TRUE(a.indications.empty());
  EXPECT_EQ(a.packets_sent, 10u);
  EXPECT_EQ(a.observed_p, 0.0);
}

TEST(LossClassifier, TripleDupAckRetransmissionIsTd) {
  std::vector<TraceEvent> ev;
  for (sim::SeqNo s = 0; s < 8; ++s) {
    ev.push_back(send_event(0.01 * static_cast<double>(s), s, false));
  }
  ev.push_back(ack_event(0.20, 4));  // new ack
  ev.push_back(ack_event(0.21, 4));  // dup 1
  ev.push_back(ack_event(0.22, 4));  // dup 2
  ev.push_back(ack_event(0.23, 4));  // dup 3
  ev.push_back(send_event(0.24, 4, true));  // fast retransmit
  const LossAnalysis a = analyze_losses(ev, 3);
  ASSERT_EQ(a.indications.size(), 1u);
  EXPECT_FALSE(a.indications[0].is_timeout);
  EXPECT_EQ(a.td_count, 1u);
  EXPECT_EQ(a.timeout_sequences(), 0u);
}

TEST(LossClassifier, RetransmissionWithoutDupAcksIsTimeout) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0, false));
  ev.push_back(send_event(3.0, 0, true));  // RTO fired
  const LossAnalysis a = analyze_losses(ev);
  ASSERT_EQ(a.indications.size(), 1u);
  EXPECT_TRUE(a.indications[0].is_timeout);
  EXPECT_EQ(a.indications[0].timeout_depth, 1);
  EXPECT_EQ(a.timeout_depth_counts[0], 1u);
}

TEST(LossClassifier, ConsecutiveTimeoutsFormOneSequence) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0, false));
  ev.push_back(send_event(3.0, 0, true));   // T0
  ev.push_back(send_event(9.0, 0, true));   // 2*T0 later: backoff 1
  ev.push_back(send_event(21.0, 0, true));  // 4*T0 later: backoff 2
  ev.push_back(ack_event(21.2, 1));         // finally recovered
  const LossAnalysis a = analyze_losses(ev);
  ASSERT_EQ(a.indications.size(), 1u);
  EXPECT_EQ(a.indications[0].timeout_depth, 3);
  EXPECT_EQ(a.timeout_depth_counts[2], 1u);  // "T2" column
  EXPECT_EQ(a.timeout_sequences(), 1u);
}

TEST(LossClassifier, NewAckSplitsTimeoutSequences) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0, false));
  ev.push_back(send_event(3.0, 0, true));
  ev.push_back(ack_event(3.2, 1));          // sequence of depth 1 ends
  ev.push_back(send_event(3.3, 1, false));
  ev.push_back(send_event(6.3, 1, true));   // new sequence
  const LossAnalysis a = analyze_losses(ev);
  EXPECT_EQ(a.indications.size(), 2u);
  EXPECT_EQ(a.timeout_depth_counts[0], 2u);
}

TEST(LossClassifier, DepthSixOrMoreAggregates) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0, false));
  double t = 1.0;
  for (int k = 0; k < 9; ++k) {
    ev.push_back(send_event(t, 0, true));
    t *= 2.0;
  }
  const LossAnalysis a = analyze_losses(ev);
  ASSERT_EQ(a.indications.size(), 1u);
  EXPECT_EQ(a.indications[0].timeout_depth, 9);
  EXPECT_EQ(a.timeout_depth_counts[5], 1u);  // "T5 or more"
}

TEST(LossClassifier, TdThenTimeoutCountsTwoIndications) {
  // A failed fast retransmit followed by an RTO: one TD + one TO.
  std::vector<TraceEvent> ev;
  for (sim::SeqNo s = 0; s < 8; ++s) {
    ev.push_back(send_event(0.01 * static_cast<double>(s), s, false));
  }
  ev.push_back(ack_event(0.2, 4));
  ev.push_back(ack_event(0.21, 4));
  ev.push_back(ack_event(0.22, 4));
  ev.push_back(ack_event(0.23, 4));
  ev.push_back(send_event(0.24, 4, true));  // TD
  ev.push_back(send_event(3.24, 4, true));  // then RTO
  const LossAnalysis a = analyze_losses(ev, 3);
  EXPECT_EQ(a.indications.size(), 2u);
  EXPECT_EQ(a.td_count, 1u);
  EXPECT_EQ(a.timeout_sequences(), 1u);
}

TEST(LossClassifier, LinuxThresholdClassifiesDoubleDupAsTd) {
  std::vector<TraceEvent> ev;
  for (sim::SeqNo s = 0; s < 8; ++s) {
    ev.push_back(send_event(0.01 * static_cast<double>(s), s, false));
  }
  ev.push_back(ack_event(0.2, 4));
  ev.push_back(ack_event(0.21, 4));
  ev.push_back(ack_event(0.22, 4));
  ev.push_back(send_event(0.23, 4, true));
  EXPECT_EQ(analyze_losses(ev, 2).td_count, 1u);
  EXPECT_EQ(analyze_losses(ev, 3).td_count, 0u);  // same trace, BSD rules
}

TEST(LossClassifier, FirstTimeoutWaitIsMeasuredFromLastNewAck) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0, false));
  ev.push_back(ack_event(0.2, 1));
  ev.push_back(send_event(0.2, 1, false));
  ev.push_back(send_event(2.7, 1, true));  // RTO ~2.5 after the ack
  const LossAnalysis a = analyze_losses(ev);
  ASSERT_EQ(a.indications.size(), 1u);
  EXPECT_NEAR(a.indications[0].first_timeout_wait, 2.5, 1e-9);
  EXPECT_NEAR(a.mean_single_timeout, 2.5, 1e-9);
}

TEST(LossClassifier, GroundTruthAgreementOnSimulatedTrace) {
  // The wire-only classifier must agree with the sender's own counters.
  sim::ConnectionConfig cfg;
  cfg.sender.advertised_window = 24.0;
  cfg.forward_link.propagation_delay = 0.08;
  cfg.reverse_link.propagation_delay = 0.08;
  cfg.forward_loss = sim::BernoulliLossSpec{0.02};
  cfg.seed = 99;
  sim::Connection conn(cfg);
  TraceRecorder rec;
  conn.set_observer(&rec);
  conn.run_for(600.0);

  const LossAnalysis a = analyze_losses(rec.events(), 3);
  const auto& st = conn.sender().stats();
  EXPECT_EQ(a.td_count, st.fast_retransmits);
  // Individual timeouts (not sequences) must also match: total depth.
  std::uint64_t total_timeouts = 0;
  for (const LossIndication& ind : a.indications) {
    total_timeouts += static_cast<std::uint64_t>(ind.timeout_depth);
  }
  EXPECT_EQ(total_timeouts, st.timeouts);
  EXPECT_EQ(a.packets_sent, st.transmissions);
}

}  // namespace
}  // namespace pftk::trace
