#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/histogram.hpp"

namespace pftk::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_THROW((void)h.bin_lo(5), std::out_of_range);
}

TEST(Histogram, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count_in_bin(0), 2u);
  EXPECT_EQ(h.count_in_bin(1), 1u);
  EXPECT_EQ(h.count_in_bin(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflowAreTracked) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);   // hi is exclusive -> overflow
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FractionsIncludeOutliers) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5);
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.fraction_in_bin(0), 0.5);
}

TEST(CategoryCounter, RejectsZeroCategories) {
  EXPECT_THROW(CategoryCounter(0), std::invalid_argument);
}

TEST(CategoryCounter, SaturatesIntoLastBucket) {
  // Mirrors the Table-II columns: depths 1..5 plus "5 or more".
  CategoryCounter c(6);
  c.add(0);
  c.add(1);
  c.add(5);
  c.add(6);
  c.add(99);
  EXPECT_EQ(c.count(0), 1u);
  EXPECT_EQ(c.count(1), 1u);
  EXPECT_EQ(c.count(5), 3u);  // 5, 6 and 99 all saturate
  EXPECT_EQ(c.total(), 5u);
  EXPECT_THROW((void)c.count(6), std::out_of_range);
}

}  // namespace
}  // namespace pftk::stats
