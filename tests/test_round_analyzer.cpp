// The round reconstruction and — more importantly — the measured validity
// of the paper's round abstraction on simulated Reno traffic.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/connection.hpp"
#include "trace/round_analyzer.hpp"
#include "trace/trace_recorder.hpp"

namespace pftk::trace {
namespace {

TraceEvent send_event(double t, sim::SeqNo seq, bool rexmit = false) {
  TraceEvent e;
  e.t = t;
  e.type = TraceEventType::kSegmentSent;
  e.seq = seq;
  e.retransmission = rexmit;
  return e;
}

TraceEvent ack_event(double t, sim::SeqNo cum, bool dup = false) {
  TraceEvent e;
  e.t = t;
  e.type = TraceEventType::kAckReceived;
  e.seq = cum;
  e.duplicate = dup;
  return e;
}

TEST(RoundAnalyzer, HandBuiltStopAndWaitRounds) {
  // Lock-step: send 1 packet, ack, send next — every packet is a round.
  std::vector<TraceEvent> ev;
  double t = 0.0;
  sim::SeqNo seq = 0;
  for (int i = 0; i < 10; ++i) {
    ev.push_back(send_event(t, seq));
    ev.push_back(ack_event(t + 0.2, seq + 1));
    t += 0.2;
    ++seq;
  }
  const RoundAnalysis a = analyze_rounds(ev);
  ASSERT_EQ(a.rounds.size(), 10u);
  EXPECT_EQ(a.sizes.mean(), 1.0);
  EXPECT_NEAR(a.durations.mean(), 0.2, 1e-9);
}

TEST(RoundAnalyzer, WindowedRoundsGroupBackToBackSends) {
  // Window of 4 sent back-to-back, acked one RTT later, repeat.
  std::vector<TraceEvent> ev;
  sim::SeqNo seq = 0;
  for (int round = 0; round < 5; ++round) {
    const double t0 = 0.2 * round;
    for (int j = 0; j < 4; ++j) {
      ev.push_back(send_event(t0 + 0.001 * j, seq++));
    }
    ev.push_back(ack_event(t0 + 0.2, seq));
  }
  const RoundAnalysis a = analyze_rounds(ev);
  ASSERT_EQ(a.rounds.size(), 5u);
  EXPECT_EQ(a.sizes.mean(), 4.0);
  EXPECT_NEAR(a.durations.mean(), 0.2, 1e-9);
  // Back-to-back sends: span is a tiny fraction of the duration.
  EXPECT_LT(a.span_fraction.mean(), 0.05);
}

TEST(RoundAnalyzer, RetransmissionBreaksTheRound) {
  std::vector<TraceEvent> ev;
  ev.push_back(send_event(0.0, 0));
  ev.push_back(send_event(0.001, 1));
  ev.push_back(send_event(3.0, 0, /*rexmit=*/true));  // timeout recovery
  ev.push_back(ack_event(3.2, 2));
  ev.push_back(send_event(3.2, 2));
  ev.push_back(ack_event(3.4, 3));
  const RoundAnalysis a = analyze_rounds(ev);
  // Two rounds, but the recovery boundary contributes no duration sample.
  ASSERT_EQ(a.rounds.size(), 2u);
  EXPECT_EQ(a.durations.count(), 0u);
}

TEST(RoundAnalyzer, SimulatedRenoExhibitsThePapersRounds) {
  // The load-bearing check: on a clean path the simulated Reno flow's
  // round durations sit at ~1 RTT, sends cluster at the round start, and
  // round size is uncorrelated with round duration (Section IV's
  // assumption, |rho| small off modem paths).
  sim::ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.forward_link.propagation_delay = 0.1;
  cfg.reverse_link.propagation_delay = 0.1;
  cfg.forward_loss = sim::BernoulliLossSpec{0.005};
  cfg.sender.min_rto = 1.0;
  cfg.seed = 8;
  sim::Connection conn(cfg);
  TraceRecorder rec;
  conn.set_observer(&rec);
  conn.run_for(600.0);

  const RoundAnalysis a = analyze_rounds(rec.events());
  ASSERT_GT(a.durations.count(), 500u);
  EXPECT_NEAR(a.duration_over_rtt, 1.0, 0.35);
  EXPECT_LT(std::abs(a.size_vs_duration.correlation()), 0.35);
  EXPECT_GT(a.sizes.mean(), 2.0);  // operating window well above one packet
}

TEST(RoundAnalyzer, ModemPathViolatesTheAssumption) {
  // On the Fig.-11 bottleneck the round duration grows with the round
  // size (the queue *is* the RTT): positive, strong correlation.
  sim::ConnectionConfig cfg;
  cfg.sender.advertised_window = 22.0;
  cfg.forward_link.propagation_delay = 0.15;
  cfg.reverse_link.propagation_delay = 0.15;
  cfg.forward_link.rate_pps = 6.25;
  cfg.forward_queue = sim::DropTailSpec{12};
  cfg.sender.min_rto = 1.0;
  cfg.seed = 8;
  sim::Connection conn(cfg);
  TraceRecorder rec;
  conn.set_observer(&rec);
  conn.run_for(1200.0);

  const RoundAnalysis a = analyze_rounds(rec.events());
  ASSERT_GT(a.durations.count(), 50u);
  EXPECT_GT(a.size_vs_duration.correlation(), 0.4);
}

TEST(RoundAnalyzer, EmptyTrace) {
  const RoundAnalysis a = analyze_rounds({});
  EXPECT_TRUE(a.rounds.empty());
  EXPECT_EQ(a.duration_over_rtt, 0.0);
}

}  // namespace
}  // namespace pftk::trace
