#include <gtest/gtest.h>

#include <vector>

#include "exp/model_comparison.hpp"

namespace pftk::exp {
namespace {

model::ModelParams base_params() {
  model::ModelParams mp;
  mp.p = 0.02;  // overwritten per observation
  mp.rtt = 0.2;
  mp.t0 = 2.0;
  mp.b = 2;
  mp.wm = 16.0;
  return mp;
}

trace::IntervalObservation make_obs(double p, std::uint64_t packets) {
  trace::IntervalObservation obs;
  obs.packets_sent = packets;
  obs.loss_indications = static_cast<std::uint64_t>(p * static_cast<double>(packets));
  obs.observed_p = p;
  obs.length = 100.0;
  return obs;
}

TEST(ScoreHourTrace, PerfectObservationsScoreZeroForFullModel) {
  // Build observations whose packet counts equal the full model's own
  // prediction: the full model's error must be ~0.
  const model::ModelParams base = base_params();
  std::vector<trace::IntervalObservation> intervals;
  for (const double p : {0.01, 0.02, 0.05}) {
    model::ModelParams mp = base;
    mp.p = p;
    const double predicted = model::evaluate_model(model::ModelKind::kFull, mp) * 100.0;
    intervals.push_back(make_obs(p, static_cast<std::uint64_t>(predicted + 0.5)));
  }
  const ModelErrorRow row = score_hour_trace("test", base, intervals, 100.0);
  EXPECT_LT(row.avg_error[0], 0.01);   // full
  EXPECT_EQ(row.observations, 3u);
}

TEST(ScoreHourTrace, TdOnlyOverestimatesTimeoutHeavyTraces) {
  // Observations at high p where timeouts dominate: TD-only's error must
  // exceed the full model's (the Fig. 9 ordering).
  const model::ModelParams base = base_params();
  std::vector<trace::IntervalObservation> intervals;
  for (const double p : {0.05, 0.08, 0.12}) {
    model::ModelParams mp = base;
    mp.p = p;
    const double truth = model::evaluate_model(model::ModelKind::kFull, mp) * 100.0;
    intervals.push_back(make_obs(p, static_cast<std::uint64_t>(truth + 0.5)));
  }
  const ModelErrorRow row = score_hour_trace("test", base, intervals, 100.0);
  EXPECT_GT(row.avg_error[2], row.avg_error[0]);  // TD-only worse than full
}

TEST(ScoreHourTrace, EmptyIntervalsAreSkipped) {
  const model::ModelParams base = base_params();
  std::vector<trace::IntervalObservation> intervals;
  intervals.push_back(make_obs(0.02, 0));  // no packets: skipped
  intervals.push_back(make_obs(0.02, 500));
  const ModelErrorRow row = score_hour_trace("t", base, intervals, 100.0);
  EXPECT_EQ(row.observations, 1u);
}

TEST(ScoreHourTrace, LossFreeIntervalUsesWindowCeiling) {
  const model::ModelParams base = base_params();  // ceiling = 16/0.2 = 80/s
  std::vector<trace::IntervalObservation> intervals;
  intervals.push_back(make_obs(0.0, 8000));  // exactly the ceiling *100s
  const ModelErrorRow row = score_hour_trace("t", base, intervals, 100.0);
  EXPECT_LT(row.avg_error[0], 0.01);  // full model nails it
  EXPECT_LT(row.avg_error[1], 0.01);  // approx too
  // TD-only is undefined at p=0 and contributes nothing, so its average
  // error over this trace is 0 by convention (no observations).
  EXPECT_EQ(row.avg_error[2], 0.0);
}

TEST(ScoreShortTraces, MirrorsHourScoring) {
  std::vector<ShortTraceRecord> records;
  for (int i = 0; i < 3; ++i) {
    ShortTraceRecord rec;
    rec.index = i;
    rec.params = base_params();
    rec.params.p = 0.03;
    rec.had_loss = true;
    const double truth =
        model::evaluate_model(model::ModelKind::kFull, rec.params) * 100.0;
    rec.packets_sent = static_cast<std::uint64_t>(truth + 0.5);
    records.push_back(rec);
  }
  const ModelErrorRow row = score_short_traces("pair", records, 100.0);
  EXPECT_EQ(row.label, "pair");
  EXPECT_EQ(row.observations, 3u);
  EXPECT_LT(row.avg_error[0], 0.01);
}

TEST(ScoreShortTraces, ZeroPacketTracesSkipped) {
  std::vector<ShortTraceRecord> records(1);
  records[0].packets_sent = 0;
  records[0].params = base_params();
  const ModelErrorRow row = score_short_traces("pair", records, 100.0);
  EXPECT_EQ(row.observations, 0u);
}

}  // namespace
}  // namespace pftk::exp
