#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/link.hpp"
#include "sim/packet.hpp"

namespace pftk::sim {
namespace {

struct Delivery {
  SeqNo seq;
  Time at;
};

struct LinkFixture {
  EventQueue queue;
  std::vector<Delivery> deliveries;

  std::unique_ptr<Link<Segment>> make(const LinkConfig& cfg,
                                      std::unique_ptr<LossModel> loss = nullptr,
                                      std::unique_ptr<QueuePolicy> policy = nullptr) {
    auto link = std::make_unique<Link<Segment>>(queue, cfg, Rng(1), std::move(loss),
                                                std::move(policy));
    link->set_deliver([this](const Segment& s, Time t) {
      deliveries.push_back({s.seq, t});
    });
    return link;
  }

  void send(Link<Segment>& link, SeqNo seq) {
    Segment s;
    s.seq = seq;
    link.send(s);
  }
};

TEST(Link, DeliversAfterPropagationDelay) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.propagation_delay = 0.25;
  auto link = f.make(cfg);
  f.send(*link, 7);
  f.queue.run_all();
  ASSERT_EQ(f.deliveries.size(), 1u);
  EXPECT_EQ(f.deliveries[0].seq, 7u);
  EXPECT_DOUBLE_EQ(f.deliveries[0].at, 0.25);
}

TEST(Link, JitterNeverReorders) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.propagation_delay = 0.1;
  cfg.jitter = 0.05;
  auto link = f.make(cfg);
  for (SeqNo i = 0; i < 200; ++i) {
    f.send(*link, i);
  }
  f.queue.run_all();
  ASSERT_EQ(f.deliveries.size(), 200u);
  for (std::size_t i = 1; i < f.deliveries.size(); ++i) {
    EXPECT_LE(f.deliveries[i - 1].at, f.deliveries[i].at);
    EXPECT_EQ(f.deliveries[i].seq, i);
  }
}

TEST(Link, LossModelDropsPackets) {
  LinkFixture f;
  LinkConfig cfg;
  auto link = f.make(cfg, std::make_unique<BernoulliLoss>(0.5));
  for (SeqNo i = 0; i < 2000; ++i) {
    f.send(*link, i);
  }
  f.queue.run_all();
  const LinkStats& st = link->stats();
  EXPECT_EQ(st.offered, 2000u);
  EXPECT_NEAR(static_cast<double>(st.dropped_loss) / 2000.0, 0.5, 0.05);
  EXPECT_EQ(st.delivered + st.dropped_loss, st.offered);
}

TEST(Link, RateLimitSerializesPackets) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.propagation_delay = 0.0;
  cfg.rate_pps = 10.0;  // 0.1 s per packet
  auto link = f.make(cfg);
  for (SeqNo i = 0; i < 5; ++i) {
    f.send(*link, i);
  }
  f.queue.run_all();
  ASSERT_EQ(f.deliveries.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(f.deliveries[i].at, 0.1 * static_cast<double>(i + 1), 1e-9);
  }
}

TEST(Link, DropTailQueueOverflows) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.rate_pps = 1.0;
  auto link = f.make(cfg, nullptr, std::make_unique<DropTailPolicy>(3));
  for (SeqNo i = 0; i < 10; ++i) {
    f.send(*link, i);  // all at t=0: 1 in service + 3 queued max
  }
  f.queue.run_all();
  const LinkStats& st = link->stats();
  EXPECT_GT(st.dropped_queue, 0u);
  EXPECT_LT(st.delivered, 10u);
  EXPECT_EQ(st.delivered + st.dropped_queue, st.offered);
}

TEST(Link, BacklogReflectsQueuedPackets) {
  LinkFixture f;
  LinkConfig cfg;
  cfg.rate_pps = 1.0;
  auto link = f.make(cfg);
  for (SeqNo i = 0; i < 4; ++i) {
    f.send(*link, i);
  }
  EXPECT_EQ(link->backlog(), 4u);
  f.queue.run_until(2.0);
  EXPECT_EQ(link->backlog(), 2u);
  f.queue.run_all();
  EXPECT_EQ(link->backlog(), 0u);
}

TEST(Link, SendWithoutCallbackThrows) {
  EventQueue q;
  Link<Segment> link(q, LinkConfig{}, Rng(1));
  Segment s;
  EXPECT_THROW(link.send(s), std::logic_error);
}

TEST(Link, InvalidConfigThrows) {
  EventQueue q;
  LinkConfig cfg;
  cfg.propagation_delay = -1.0;
  EXPECT_THROW(Link<Segment>(q, cfg, Rng(1)), std::invalid_argument);
}

TEST(Link, ResetProcessesClearsStats) {
  LinkFixture f;
  auto link = f.make(LinkConfig{});
  f.send(*link, 1);
  f.queue.run_all();
  EXPECT_EQ(link->stats().offered, 1u);
  link->reset_processes();
  EXPECT_EQ(link->stats().offered, 0u);
}

}  // namespace
}  // namespace pftk::sim
