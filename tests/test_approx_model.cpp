#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/approx_model.hpp"
#include "core/full_model.hpp"

namespace pftk::model {
namespace {

ModelParams params(double p, double rtt = 0.2, double t0 = 2.0, int b = 2,
                   double wm = 64.0) {
  ModelParams mp;
  mp.p = p;
  mp.rtt = rtt;
  mp.t0 = t0;
  mp.b = b;
  mp.wm = wm;
  return mp;
}

TEST(ApproxModel, MatchesHandComputedFormula) {
  // eq (33) evaluated by hand for p=0.02, b=2, RTT=0.2, T0=2.
  const double p = 0.02;
  const double td_term = 0.2 * std::sqrt(2.0 * 2.0 * p / 3.0);
  const double to_term =
      2.0 * std::min(1.0, 3.0 * std::sqrt(3.0 * 2.0 * p / 8.0)) * p * (1.0 + 32.0 * p * p);
  const double expected = std::min(64.0 / 0.2, 1.0 / (td_term + to_term));
  EXPECT_NEAR(approx_model_send_rate(params(p)), expected, 1e-12);
}

TEST(ApproxModel, CloseToFullModelInMeasuredLossRange) {
  // Section III verifies eq (33) tracks (32) well over the loss rates the
  // traces actually exhibit (roughly p <= 10%).
  for (double p = 0.002; p < 0.1; p *= 1.5) {
    const ModelParams mp = params(p);
    const double full = full_model_send_rate(mp);
    const double approx = approx_model_send_rate(mp);
    EXPECT_NEAR(approx / full, 1.0, 0.30) << "p=" << p;
  }
}

TEST(ApproxModel, ConservativeAtHighLoss) {
  // Beyond the measured range the approximation under-predicts (32):
  // its timeout term, built from small-p limits, overweights timeouts.
  for (const double p : {0.2, 0.3, 0.5}) {
    const ModelParams mp = params(p);
    EXPECT_LT(approx_model_send_rate(mp), full_model_send_rate(mp)) << "p=" << p;
  }
}

TEST(ApproxModel, WindowCeilingApplies) {
  const ModelParams mp = params(0.0001, 0.2, 2.0, 2, 10.0);
  EXPECT_DOUBLE_EQ(approx_model_send_rate(mp), 10.0 / 0.2);
}

TEST(ApproxModel, ZeroLossIsCeiling) {
  const ModelParams mp = params(0.0, 0.5, 2.0, 2, 20.0);
  EXPECT_DOUBLE_EQ(approx_model_send_rate(mp), 40.0);
  EXPECT_TRUE(std::isinf(approx_model_loss_limited_rate(mp)));
}

TEST(ApproxModel, LossLimitedTermIgnoresWindow) {
  ModelParams mp = params(0.05, 0.2, 2.0, 2, 4.0);
  const double small_window = approx_model_loss_limited_rate(mp);
  mp.wm = 400.0;
  EXPECT_DOUBLE_EQ(approx_model_loss_limited_rate(mp), small_window);
}

TEST(ApproxModel, MonotoneDecreasingInLoss) {
  double prev = approx_model_send_rate(params(0.0005));
  for (double p = 0.001; p < 0.95; p += 0.01) {
    const double cur = approx_model_send_rate(params(p));
    EXPECT_LE(cur, prev * (1.0 + 1e-9)) << "p=" << p;
    prev = cur;
  }
}

TEST(ApproxModel, TimeoutTermSaturatesAtHighLoss) {
  // min(1, 3 sqrt(3bp/8)) == 1 for p >= 8/(27 b): check continuity there.
  const double p_sat = 8.0 / (27.0 * 2.0);
  const double below = approx_model_send_rate(params(p_sat * 0.999));
  const double above = approx_model_send_rate(params(p_sat * 1.001));
  EXPECT_NEAR(below / above, 1.0, 0.01);
}

TEST(ApproxModel, InvalidParamsThrow) {
  ModelParams mp = params(0.01);
  mp.wm = 0.0;
  EXPECT_THROW((void)approx_model_send_rate(mp), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::model
