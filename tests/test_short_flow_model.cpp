#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/full_model.hpp"
#include "core/short_flow_model.hpp"
#include "sim/connection.hpp"

namespace pftk::model {
namespace {

ModelParams path(double p, double rtt = 0.2, double t0 = 1.5, double wm = 32.0) {
  ModelParams mp;
  mp.p = p;
  mp.rtt = rtt;
  mp.t0 = t0;
  mp.b = 2;
  mp.wm = wm;
  return mp;
}

TEST(ShortFlowModel, LosslessIsPureSlowStart) {
  // With p = 0 and no window cap pressure: latency = RTT * log_1.5 of the
  // transfer, at least one round.
  const ShortFlowBreakdown bd = short_flow_breakdown(1, path(0.0));
  EXPECT_DOUBLE_EQ(bd.loss_probability, 0.0);
  EXPECT_DOUBLE_EQ(bd.loss_recovery_seconds, 0.0);
  EXPECT_DOUBLE_EQ(bd.steady_state_seconds, 0.0);
  EXPECT_NEAR(bd.total_seconds, 0.2, 0.05);  // one round trip

  const double d = 100.0;
  // Keep the window cap out of play (w_ss would be 51 packets).
  const ShortFlowBreakdown big = short_flow_breakdown(100, path(0.0, 0.2, 1.5, 1000.0));
  const double rounds = std::log(d * 0.5 + 1.0) / std::log(1.5);
  EXPECT_NEAR(big.total_seconds, 0.2 * rounds, 1e-9);
}

TEST(ShortFlowModel, MonotoneInTransferSize) {
  double prev = 0.0;
  for (const std::uint64_t d : {1ULL, 2ULL, 5ULL, 20ULL, 100ULL, 1000ULL, 10000ULL}) {
    const double latency = expected_transfer_latency(d, path(0.01));
    EXPECT_GT(latency, prev) << "d=" << d;
    prev = latency;
  }
}

TEST(ShortFlowModel, MonotoneInLossRate) {
  double prev = 0.0;
  for (const double p : {0.0, 0.005, 0.02, 0.08, 0.2}) {
    const double latency = expected_transfer_latency(500, path(p));
    EXPECT_GT(latency, prev) << "p=" << p;
    prev = latency;
  }
}

TEST(ShortFlowModel, LargeTransfersConvergeToSteadyStateRate) {
  const ModelParams mp = path(0.02);
  const double rate = full_model_send_rate(mp);
  const std::uint64_t d = 200000;
  const double latency = expected_transfer_latency(d, mp);
  const double effective_rate = static_cast<double>(d) / latency;
  EXPECT_NEAR(effective_rate / rate, 1.0, 0.05);
}

TEST(ShortFlowModel, SmallTransfersAreSlowStartDominated) {
  const ShortFlowBreakdown bd = short_flow_breakdown(8, path(0.02));
  EXPECT_GT(bd.slow_start_seconds, bd.steady_state_seconds);
}

TEST(ShortFlowModel, HandshakeAddsOneRtt) {
  ShortFlowOptions with;
  with.include_handshake = true;
  const double base = expected_transfer_latency(10, path(0.01));
  const double shaken = expected_transfer_latency(10, path(0.01), with);
  EXPECT_NEAR(shaken - base, 0.2, 1e-9);
}

TEST(ShortFlowModel, WindowCapSlowsTheExponentialPhase) {
  const double open = expected_transfer_latency(2000, path(0.0, 0.2, 1.5, 1000.0));
  const double capped = expected_transfer_latency(2000, path(0.0, 0.2, 1.5, 8.0));
  EXPECT_GT(capped, 2.0 * open);
}

TEST(ShortFlowModel, RejectsBadInput) {
  EXPECT_THROW((void)expected_transfer_latency(0, path(0.01)), std::invalid_argument);
  ShortFlowOptions bad;
  bad.initial_cwnd = 0.5;
  EXPECT_THROW((void)expected_transfer_latency(10, path(0.01), bad),
               std::invalid_argument);
}

TEST(ShortFlowModel, TracksSimulatedTransferLatency) {
  // Validate against real finite transfers: the model should land within
  // a factor of ~2 of the mean simulated completion time.
  const double p = 0.01;
  for (const std::uint64_t d : {20ULL, 200ULL, 2000ULL}) {
    double total = 0.0;
    int completed = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      sim::ConnectionConfig cfg;
      cfg.sender.advertised_window = 32.0;
      cfg.sender.total_packets = d;
      cfg.sender.min_rto = 1.0;
      cfg.forward_link.propagation_delay = 0.1;
      cfg.reverse_link.propagation_delay = 0.1;
      cfg.forward_loss = sim::BernoulliLossSpec{p};
      cfg.seed = seed;
      sim::Connection conn(cfg);
      conn.run_for(3600.0);
      if (conn.sender().complete()) {
        total += conn.sender().completion_time();
        ++completed;
      }
    }
    ASSERT_GT(completed, 7) << "d=" << d;
    const double mean_sim = total / completed;
    ModelParams mp = path(p, 0.22, 1.0);  // measured-ish RTT incl. delack
    const double predicted = expected_transfer_latency(d, mp);
    EXPECT_GT(predicted / mean_sim, 0.4) << "d=" << d;
    EXPECT_LT(predicted / mean_sim, 2.5) << "d=" << d;
  }
}

}  // namespace
}  // namespace pftk::model
