// Property sweep over the whole path catalogue: every profile's simulated
// trace must satisfy the cross-module invariants that tie the simulator,
// the trace pipeline and the experiment harness together.
#include <gtest/gtest.h>

#include <string>

#include "exp/path_profile.hpp"
#include "trace/interval_analyzer.hpp"
#include "trace/loss_classifier.hpp"
#include "trace/rtt_estimator.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/trace_validator.hpp"

namespace pftk::exp {
namespace {

class ProfileSweep : public ::testing::TestWithParam<int> {
 protected:
  static constexpr double kDuration = 150.0;
};

TEST_P(ProfileSweep, InvariantsHold) {
  const PathProfile profile = table2_profiles().at(static_cast<std::size_t>(GetParam()));
  sim::Connection conn(make_connection_config(profile, 20240615));
  trace::TraceRecorder rec;
  conn.set_observer(&rec);
  const sim::ConnectionSummary summary = conn.run_for(kDuration);

  const auto& sender = conn.sender();
  const auto& receiver = conn.receiver();

  // Accounting identities.
  EXPECT_EQ(sender.stats().transmissions,
            sender.stats().new_segments + sender.stats().retransmissions)
      << profile.label();
  EXPECT_LE(summary.packets_delivered, summary.packets_sent) << profile.label();
  // The sender never believes more was acked than the receiver delivered.
  EXPECT_LE(sender.snd_una(), receiver.next_expected()) << profile.label();
  EXPECT_LE(sender.snd_una(), sender.next_seq()) << profile.label();

  // The wire trace is structurally valid.
  const trace::TraceValidation validation = trace::validate_trace(rec.events());
  EXPECT_TRUE(validation.ok())
      << profile.label() << ": " << validation.violations.size() << " violations, first: "
      << (validation.violations.empty() ? "" : validation.violations.front().message);

  // Classifier consistency: columns add up; ground truth agreement.
  const trace::LossAnalysis losses =
      trace::analyze_losses(rec.events(), profile.dupack_threshold());
  std::uint64_t depth_sum = losses.td_count;
  std::uint64_t timeout_count = 0;
  for (const auto& ind : losses.indications) {
    if (ind.is_timeout) {
      timeout_count += static_cast<std::uint64_t>(ind.timeout_depth);
    } else {
      ++depth_sum;
    }
  }
  EXPECT_EQ(losses.td_count, sender.stats().fast_retransmits) << profile.label();
  EXPECT_EQ(timeout_count, sender.stats().timeouts) << profile.label();
  EXPECT_EQ(losses.packets_sent, sender.stats().transmissions) << profile.label();

  // RTT estimates sit at or above the propagation floor.
  const trace::RttEstimate rtt = trace::estimate_rtt(rec.events());
  if (rtt.samples.count() > 0) {
    EXPECT_GE(rtt.samples.min(), profile.nominal_rtt() * 0.99) << profile.label();
    EXPECT_LT(rtt.mean_rtt(), profile.nominal_rtt() + 0.4) << profile.label();
  }

  // Interval packet counts tie out with the trace total.
  const auto intervals =
      trace::analyze_intervals(rec.events(), kDuration, 50.0, profile.dupack_threshold());
  std::uint64_t interval_packets = 0;
  for (const auto& obs : intervals) {
    interval_packets += obs.packets_sent;
  }
  EXPECT_EQ(interval_packets, losses.packets_sent) << profile.label();
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileSweep, ::testing::Range(0, 24),
                         [](const ::testing::TestParamInfo<int>& info) {
                           const auto profile = table2_profiles().at(
                               static_cast<std::size_t>(info.param));
                           std::string name = profile.sender + "_" + profile.receiver;
                           return name;
                         });

}  // namespace
}  // namespace pftk::exp
