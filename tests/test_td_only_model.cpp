#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/td_only_model.hpp"

namespace pftk::model {
namespace {

ModelParams base_params(double p) {
  ModelParams mp;
  mp.p = p;
  mp.rtt = 0.2;
  mp.t0 = 2.0;
  mp.b = 2;
  mp.wm = ModelParams::unlimited_window;
  return mp;
}

TEST(TdOnlyModel, AsymptoteIsMathisFormula) {
  // eq (20): B = (1/RTT) sqrt(3/(2 b p)).
  const ModelParams mp = base_params(0.01);
  const double expected = std::sqrt(3.0 / (2.0 * 2.0 * 0.01)) / 0.2;
  EXPECT_DOUBLE_EQ(td_only_asymptotic_send_rate(mp), expected);
}

TEST(TdOnlyModel, ExactMatchesAsymptoteForSmallP) {
  for (const int b : {1, 2}) {
    ModelParams mp = base_params(1e-6);
    mp.b = b;
    const double exact = td_only_send_rate(mp);
    const double asym = td_only_asymptotic_send_rate(mp);
    EXPECT_NEAR(exact / asym, 1.0, 0.02) << "b=" << b;
  }
}

TEST(TdOnlyModel, ExactAndAsymptoteDivergeForLargeP) {
  // The o(1/sqrt(p)) terms matter above ~5% loss: the two TD-only forms
  // separate by well over 10% (here the (1-p)/p packet term keeps the
  // exact form above the asymptote).
  ModelParams mp = base_params(0.3);
  const double ratio = td_only_asymptotic_send_rate(mp) / td_only_send_rate(mp);
  EXPECT_GT(std::abs(ratio - 1.0), 0.10);
}

TEST(TdOnlyModel, RateDecreasesWithLoss) {
  double prev = td_only_send_rate(base_params(0.001));
  for (double p = 0.005; p < 0.9; p += 0.02) {
    const double cur = td_only_send_rate(base_params(p));
    EXPECT_LT(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(TdOnlyModel, RateScalesInverselyWithRtt) {
  ModelParams mp = base_params(0.02);
  const double r1 = td_only_send_rate(mp);
  mp.rtt = 0.4;
  const double r2 = td_only_send_rate(mp);
  EXPECT_NEAR(r1 / r2, 2.0, 1e-9);
}

TEST(TdOnlyModel, ZeroLossIsUnbounded) {
  const ModelParams mp = base_params(0.0);
  EXPECT_TRUE(std::isinf(td_only_send_rate(mp)));
  EXPECT_TRUE(std::isinf(td_only_asymptotic_send_rate(mp)));
}

TEST(TdOnlyModel, DelayedAcksHalveTheRateRatio) {
  ModelParams mp = base_params(0.01);
  mp.b = 1;
  const double b1 = td_only_asymptotic_send_rate(mp);
  mp.b = 2;
  const double b2 = td_only_asymptotic_send_rate(mp);
  EXPECT_NEAR(b1 / b2, std::sqrt(2.0), 1e-12);
}

TEST(TdOnlyModel, InvalidParamsThrow) {
  ModelParams mp = base_params(0.01);
  mp.rtt = -1.0;
  EXPECT_THROW((void)td_only_send_rate(mp), std::invalid_argument);
  EXPECT_THROW((void)td_only_asymptotic_send_rate(mp), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::model
