// Graceful shutdown: a stop request mid-campaign yields an `interrupted`
// result with abandoned (never-journaled) items and a valid journal that
// resumes to the byte-identical uninterrupted outcome; the ShutdownGuard
// turns SIGINT/SIGTERM into that stop flag and hard-exits on the second
// signal.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/campaign/campaign_runner.hpp"
#include "robust/shutdown.hpp"

namespace pftk::exp::campaign {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "pftk_shutdown_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

PathProfile quick_profile(const std::string& sender, const std::string& receiver) {
  PathProfile profile;
  profile.sender = sender;
  profile.receiver = receiver;
  profile.one_way_delay = 0.05;
  profile.loss_p = 0.02;
  profile.advertised_window = 16.0;
  return profile;
}

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.profiles = {quick_profile("a", "b")};
  spec.seeds = {1, 2, 3, 4, 5, 6};
  return spec;
}

ItemOutcome fake_outcome(const CampaignItem& item) {
  ItemOutcome outcome;
  outcome.metrics.packets_sent = 10 + item.index;
  outcome.metrics.p = 0.001 * static_cast<double>(item.index + 1);
  return outcome;
}

TEST(GracefulShutdown, StopFlagInterruptsAndResumeCompletesByteIdentical) {
  // Uninterrupted reference journal.
  const std::string ref_path = temp_path("ref.jsonl");
  std::remove(ref_path.c_str());
  CampaignRunnerOptions ref_options;
  ref_options.journal_path = ref_path;
  ref_options.executor = [](const CampaignItem& item, std::uint64_t) {
    return fake_outcome(item);
  };
  const CampaignResult reference = CampaignRunner(small_spec(), ref_options).run();
  ASSERT_TRUE(reference.all_ok());
  ASSERT_FALSE(reference.interrupted);
  const std::string reference_bytes = read_file(ref_path);
  ASSERT_FALSE(reference_bytes.empty());

  // Interrupted run: the stop flag goes up after the second item.
  const std::string path = temp_path("stop.jsonl");
  std::remove(path.c_str());
  std::atomic<bool> stop{false};
  int calls = 0;
  CampaignRunnerOptions options;
  options.journal_path = path;
  options.stop = &stop;
  options.executor = [&](const CampaignItem& item, std::uint64_t) {
    if (++calls >= 2) {
      stop.store(true);
    }
    return fake_outcome(item);
  };
  const CampaignResult interrupted = CampaignRunner(small_spec(), options).run();
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_TRUE(interrupted.report.interrupted);
  EXPECT_GT(interrupted.not_run, 0u);
  EXPECT_LT(interrupted.not_run, interrupted.items.size());
  std::size_t not_run_seen = 0;
  for (const CampaignItemResult& item : interrupted.items) {
    not_run_seen += item.status == ItemStatus::kNotRun ? 1 : 0;
  }
  EXPECT_EQ(not_run_seen, interrupted.not_run);
  // The journal holds a valid settled prefix of the reference: no
  // acknowledged record lost, no abandoned item leaked in.
  const std::string partial = read_file(path);
  EXPECT_FALSE(partial.empty());
  EXPECT_TRUE(reference_bytes.compare(0, partial.size(), partial) == 0)
      << "interrupted journal is not a prefix of the reference";
  EXPECT_LT(partial.size(), reference_bytes.size());

  // Resume without the stop flag: completes, and the final journal is
  // byte-identical to the uninterrupted run.
  CampaignRunnerOptions resume_options;
  resume_options.journal_path = path;
  resume_options.resume = true;
  resume_options.executor = [](const CampaignItem& item, std::uint64_t) {
    return fake_outcome(item);
  };
  const CampaignResult resumed = CampaignRunner(small_spec(), resume_options).run();
  EXPECT_TRUE(resumed.all_ok());
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_GT(resumed.resumed, 0u);
  EXPECT_EQ(read_file(path), reference_bytes);
}

TEST(GracefulShutdown, StopBeforeStartRunsNothing) {
  std::atomic<bool> stop{true};
  int calls = 0;
  CampaignRunnerOptions options;
  options.stop = &stop;
  options.executor = [&](const CampaignItem& item, std::uint64_t) {
    ++calls;
    return fake_outcome(item);
  };
  const CampaignResult result = CampaignRunner(small_spec(), options).run();
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.not_run, result.items.size());
}

TEST(GracefulShutdown, MidLadderStopAbandonsWithoutJournaling) {
  // The item always fails transiently; the stop arrives inside its retry
  // ladder. It must settle kNotRun (not kFailedTransient with a
  // short-changed budget) and leave the journal empty, so a resume
  // re-runs the full ladder.
  CampaignSpec spec;
  spec.profiles = {quick_profile("a", "b")};
  spec.seeds = {1};
  spec.retry.max_attempts = 5;
  spec.retry.backoff_base = std::chrono::milliseconds{0};

  const std::string path = temp_path("ladder.jsonl");
  std::remove(path.c_str());
  std::atomic<bool> stop{false};
  int calls = 0;
  CampaignRunnerOptions options;
  options.journal_path = path;
  options.stop = &stop;
  options.sleep = [](std::chrono::milliseconds) {};
  options.executor = [&](const CampaignItem&, std::uint64_t) -> ItemOutcome {
    if (++calls == 2) {
      stop.store(true);
    }
    throw TransientCampaignError("flaky");
  };
  const CampaignResult result = CampaignRunner(spec, options).run();
  EXPECT_EQ(calls, 2);  // abandoned after the attempt that saw the stop
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].status, ItemStatus::kNotRun);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(read_file(path), "");  // never journaled
}

TEST(GracefulShutdown, GuardTurnsSignalIntoStopFlag) {
  robust::ShutdownGuard::reset();
  {
    robust::ShutdownGuard guard;
    EXPECT_FALSE(robust::ShutdownGuard::stop_requested());
    ASSERT_EQ(::raise(SIGTERM), 0);
    EXPECT_TRUE(robust::ShutdownGuard::stop_requested());
    EXPECT_TRUE(robust::ShutdownGuard::stop_flag()->load());
    EXPECT_EQ(robust::ShutdownGuard::signal_count(), 1);
  }
  robust::ShutdownGuard::reset();
  EXPECT_FALSE(robust::ShutdownGuard::stop_requested());
}

TEST(GracefulShutdown, SecondSignalHardExits) {
  ::fflush(nullptr);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    robust::ShutdownGuard::reset();
    robust::ShutdownGuard guard(/*hard_exit_code=*/130);
    (void)::raise(SIGTERM);  // first: cooperative stop
    (void)::raise(SIGTERM);  // second: hard _exit(130)
    ::_exit(7);              // unreachable if the guard works
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 130);
}

TEST(GracefulShutdown, SecondSigintHardExits130) {
  // Ctrl-C twice: the first SIGINT requests a cooperative stop, the
  // second must not wait for it — immediate _exit with 128 + SIGINT.
  ::fflush(nullptr);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    robust::ShutdownGuard::reset();
    robust::ShutdownGuard guard(/*hard_exit_code=*/130);
    (void)::raise(SIGINT);  // first: cooperative stop
    if (!robust::ShutdownGuard::stop_requested()) {
      ::_exit(8);  // the flag must already be up
    }
    (void)::raise(SIGINT);  // second: hard _exit(130)
    ::_exit(7);             // unreachable if the guard works
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 130);
}

}  // namespace
}  // namespace pftk::exp::campaign
