// End-to-end crash consistency: for every crash failpoint on the journal
// path, a campaign killed mid-write and then resumed converges to the
// byte-identical journal and report of an uninterrupted run. Uses the
// fork-based chaos matrix with a fast injected executor so the whole
// matrix runs in well under a second.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "exp/campaign/chaos.hpp"
#include "robust/failpoint.hpp"

namespace pftk::exp::campaign {
namespace {

PathProfile quick_profile(const std::string& sender, const std::string& receiver) {
  PathProfile profile;
  profile.sender = sender;
  profile.receiver = receiver;
  profile.one_way_delay = 0.05;
  profile.loss_p = 0.02;
  profile.advertised_window = 16.0;
  return profile;
}

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.profiles = {quick_profile("a", "b"), quick_profile("c", "d")};
  spec.seeds = {1, 2, 3};
  return spec;
}

/// Instant deterministic executor: metrics derive only from the item and
/// seed, so reference, crashed, and resumed runs all agree. Item 4 fails
/// permanently, exercising failure entries in the crash window.
ItemOutcome fake_executor(const CampaignItem& item, std::uint64_t seed) {
  if (item.index == 4) {
    throw std::invalid_argument("deliberately invalid item");
  }
  ItemOutcome outcome;
  outcome.metrics.packets_sent = 100 + item.index;
  outcome.metrics.send_rate = static_cast<double>(seed);
  outcome.metrics.p = 0.01 * static_cast<double>(item.index + 1);
  return outcome;
}

ChaosOptions chaos_options(const std::string& dir_name) {
  ChaosOptions options;
  options.work_dir = ::testing::TempDir() + dir_name;
  std::filesystem::remove_all(options.work_dir);
  options.executor = fake_executor;
  return options;
}

TEST(CrashRecovery, DefaultCrashMatrixConvergesToReference) {
  const ChaosOptions options = chaos_options("pftk_chaos_default");
  const ChaosReport report = run_chaos_matrix(small_spec(), options);

  // 6 items -> the default matrix is 3 crash shapes x 2 positions.
  ASSERT_EQ(report.cases.size(), 6u);
  EXPECT_GT(report.reference_journal_bytes, 0u);
  for (const ChaosCaseResult& c : report.cases) {
    EXPECT_TRUE(c.crashed) << c.failpoint << ": exit " << c.child_exit;
    EXPECT_EQ(c.child_exit, robust::kCrashExitCode) << c.failpoint;
    EXPECT_TRUE(c.journal_identical) << c.failpoint << ": " << c.detail;
    EXPECT_TRUE(c.report_identical) << c.failpoint << ": " << c.detail;
  }
  EXPECT_TRUE(report.all_ok()) << describe(report);
  // The parent process is still disarmed: chaos lives in the children.
  EXPECT_EQ(robust::FailpointRegistry::instance().armed_count(), 0u);
}

TEST(CrashRecovery, NonCrashInjectedErrorsAlsoResumeCleanly) {
  ChaosOptions options = chaos_options("pftk_chaos_errors");
  // Injected I/O errors abort the child run without killing it (the
  // harness records exit 9); the committed journal prefix must still
  // resume to the reference.
  options.failpoints = {"journal.append:after=2:action=error",
                        "journal.flush:after=1:action=enospc"};
  const ChaosReport report = run_chaos_matrix(small_spec(), options);

  ASSERT_EQ(report.cases.size(), 2u);
  for (const ChaosCaseResult& c : report.cases) {
    EXPECT_FALSE(c.crashed) << c.failpoint;
    EXPECT_EQ(c.child_exit, 9) << c.failpoint;
    EXPECT_TRUE(c.journal_identical) << c.failpoint << ": " << c.detail;
    EXPECT_TRUE(c.report_identical) << c.failpoint << ": " << c.detail;
  }
  EXPECT_TRUE(report.all_ok()) << describe(report);
}

TEST(CrashRecovery, DefaultMatrixCoversAppendAndFlushSites) {
  const auto specs = default_journal_crash_failpoints(6);
  ASSERT_EQ(specs.size(), 6u);
  std::size_t append = 0;
  std::size_t flush = 0;
  for (const std::string& s : specs) {
    EXPECT_NE(s.find("action=crash"), std::string::npos) << s;
    append += s.find("journal.append:") == 0 ? 1 : 0;
    flush += s.find("journal.flush:") == 0 ? 1 : 0;
    // Each spec must parse under the registry grammar.
    EXPECT_NO_THROW((void)robust::FailpointSpec::parse_one(s)) << s;
  }
  EXPECT_EQ(append, 4u);
  EXPECT_EQ(flush, 2u);
}

TEST(CrashRecovery, EmptyWorkDirIsRejected) {
  ChaosOptions options;
  options.executor = fake_executor;
  EXPECT_THROW((void)run_chaos_matrix(small_spec(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace pftk::exp::campaign
