// `pftk prof` aggregation: inclusive/exclusive self-time from nesting,
// percentiles, the parent-child rollup, and the serve accounting
// identity re-derived from marker-span counts.
#include "obs/flight/prof.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace flight = pftk::obs::flight;

namespace {

flight::DrainedSpan span(const char* name, std::uint32_t tid,
                         std::uint64_t begin_ns, std::uint64_t end_ns,
                         std::uint64_t arg = 0) {
  flight::DrainedSpan s;
  s.name = name;
  s.tid = tid;
  s.begin_ns = begin_ns;
  s.end_ns = end_ns;
  s.arg = arg;
  return s;
}

/// Drain-order invariant the profiler relies on: begin asc, then end desc.
flight::DrainedSpans make(std::vector<flight::DrainedSpan> spans,
                          std::uint64_t dropped = 0) {
  std::sort(spans.begin(), spans.end(),
            [](const flight::DrainedSpan& a, const flight::DrainedSpan& b) {
              if (a.begin_ns != b.begin_ns) {
                return a.begin_ns < b.begin_ns;
              }
              return a.end_ns > b.end_ns;
            });
  flight::DrainedSpans out;
  std::set<std::uint32_t> tids;
  for (const auto& s : spans) {
    tids.insert(s.tid);
  }
  out.spans = std::move(spans);
  out.dropped = dropped;
  out.threads = static_cast<std::uint32_t>(tids.size());
  return out;
}

TEST(ProfTest, ExclusiveSubtractsDirectChildrenOnly) {
  // outer [0,100] > mid [10,60] > leaf [20,30]; sibling leaf [70,80].
  const auto report = flight::profile_spans(make({
      span("outer", 1, 0, 100),
      span("mid", 1, 10, 60),
      span("leaf", 1, 20, 30),
      span("leaf", 1, 70, 80),
  }));
  ASSERT_EQ(report.names.size(), 3u);
  const auto find = [&](const std::string& name) -> const flight::NameStats& {
    for (const auto& stats : report.names) {
      if (stats.name == name) {
        return stats;
      }
    }
    throw std::runtime_error("missing " + name);
  };
  // outer: 100 inclusive, minus direct children mid(50) + leaf(10) = 40.
  EXPECT_EQ(find("outer").inclusive_ns, 100u);
  EXPECT_EQ(find("outer").exclusive_ns, 40u);
  // mid: 50 inclusive, minus nested leaf(10) = 40 exclusive. The
  // grandchild must NOT also be charged to outer.
  EXPECT_EQ(find("mid").inclusive_ns, 50u);
  EXPECT_EQ(find("mid").exclusive_ns, 40u);
  EXPECT_EQ(find("leaf").count, 2u);
  EXPECT_EQ(find("leaf").inclusive_ns, 20u);
  EXPECT_EQ(find("leaf").exclusive_ns, 20u);
  EXPECT_EQ(report.wall_ns, 100u);
}

TEST(ProfTest, RollupEdgesCountDirectParentChildPairs) {
  const auto report = flight::profile_spans(make({
      span("outer", 1, 0, 100),
      span("mid", 1, 10, 60),
      span("leaf", 1, 20, 30),
      span("leaf", 1, 70, 80),
  }));
  ASSERT_EQ(report.rollup.size(), 3u);
  // Sorted by total time: outer<-mid (50) first.
  EXPECT_EQ(report.rollup[0].parent, "outer");
  EXPECT_EQ(report.rollup[0].child, "mid");
  EXPECT_EQ(report.rollup[0].total_ns, 50u);
  bool saw_mid_leaf = false;
  bool saw_outer_leaf = false;
  for (const auto& edge : report.rollup) {
    if (edge.parent == "mid" && edge.child == "leaf") {
      saw_mid_leaf = true;
      EXPECT_EQ(edge.count, 1u);
      EXPECT_EQ(edge.total_ns, 10u);
    }
    if (edge.parent == "outer" && edge.child == "leaf") {
      saw_outer_leaf = true;
      EXPECT_EQ(edge.count, 1u);
      EXPECT_EQ(edge.total_ns, 10u);
    }
  }
  EXPECT_TRUE(saw_mid_leaf);
  EXPECT_TRUE(saw_outer_leaf);
}

TEST(ProfTest, ThreadsNestIndependently) {
  // Identical timestamps on two tids must not nest across threads.
  const auto report = flight::profile_spans(make({
      span("a", 1, 0, 100),
      span("b", 2, 10, 60),
  }));
  EXPECT_TRUE(report.rollup.empty());
  EXPECT_EQ(report.threads, 2u);
}

TEST(ProfTest, PercentilesAreExactOrderStatistics) {
  std::vector<flight::DrainedSpan> spans;
  // 100 sequential spans with durations 1..100 ns.
  std::uint64_t t = 0;
  for (std::uint64_t d = 1; d <= 100; ++d) {
    spans.push_back(span("work", 1, t, t + d));
    t += d + 10;
  }
  const auto report = flight::profile_spans(make(std::move(spans)));
  ASSERT_EQ(report.names.size(), 1u);
  EXPECT_EQ(report.names[0].count, 100u);
  // Lower order statistic at p over n=100 samples 1..100: idx = p*99.
  EXPECT_EQ(report.names[0].p50_ns, 50u);
  EXPECT_EQ(report.names[0].p99_ns, 99u);
  EXPECT_EQ(report.names[0].max_ns, 100u);
}

TEST(ProfTest, ServeIdentityHoldsFromMarkerCounts) {
  std::vector<flight::DrainedSpan> spans;
  std::uint64_t t = 0;
  const auto markers = [&](const char* name, int n) {
    for (int i = 0; i < n; ++i) {
      spans.push_back(span(name, 1, t, t));
      ++t;
    }
  };
  markers("serve.req.admitted", 10);
  markers("serve.req.served", 7);
  markers("serve.req.shed", 2);
  markers("serve.req.deadline_missed", 1);
  const auto report = flight::profile_spans(make(std::move(spans)));
  ASSERT_TRUE(report.serve.present);
  EXPECT_EQ(report.serve.requests, 10u);
  EXPECT_EQ(report.serve.served, 7u);
  EXPECT_EQ(report.serve.shed, 2u);
  EXPECT_EQ(report.serve.deadline_missed, 1u);
  EXPECT_EQ(report.serve.internal_errors, 0u);
  EXPECT_TRUE(report.serve.holds());
  const std::string text = flight::render_prof_text(report);
  EXPECT_NE(text.find("[OK]"), std::string::npos);
}

TEST(ProfTest, ServeIdentityViolationIsReported) {
  std::vector<flight::DrainedSpan> spans;
  spans.push_back(span("serve.req.admitted", 1, 0, 0));
  spans.push_back(span("serve.req.admitted", 1, 1, 1));
  spans.push_back(span("serve.req.served", 1, 2, 2));
  const auto report = flight::profile_spans(make(std::move(spans)));
  ASSERT_TRUE(report.serve.present);
  EXPECT_FALSE(report.serve.holds());
  const std::string text = flight::render_prof_text(report);
  EXPECT_NE(text.find("[VIOLATED]"), std::string::npos);
}

TEST(ProfTest, NonServeRecordingsOmitTheIdentity) {
  const auto report = flight::profile_spans(make({span("sim.run_slice", 1, 0, 5)}));
  EXPECT_FALSE(report.serve.present);
  const std::string text = flight::render_prof_text(report);
  EXPECT_EQ(text.find("serve identity"), std::string::npos);
}

TEST(ProfTest, DroppedSpansSurfaceAsWarning) {
  const auto report =
      flight::profile_spans(make({span("work", 1, 0, 5)}, /*dropped=*/17));
  EXPECT_EQ(report.dropped, 17u);
  const std::string text = flight::render_prof_text(report);
  EXPECT_NE(text.find("warning: 17"), std::string::npos);
}

TEST(ProfTest, JsonHasSchemaAndIdentityBlock) {
  std::vector<flight::DrainedSpan> spans;
  spans.push_back(span("serve.req.admitted", 1, 0, 0));
  spans.push_back(span("serve.req.served", 1, 1, 1));
  const auto report = flight::profile_spans(make(std::move(spans)));
  std::ostringstream os;
  flight::write_prof_json(os, report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"pftk-prof/1\""), std::string::npos);
  EXPECT_NE(json.find("\"serve_identity\""), std::string::npos);
  EXPECT_NE(json.find("\"holds\":true"), std::string::npos);
}

}  // namespace
