// The reproduction's flagship validation: the full model, fed with the
// parameters *measured from a simulated trace* (exactly the paper's
// methodology), must predict the simulated send rate much better than the
// TD-only model — and within a factor consistent with Figs. 9/10.
#include <gtest/gtest.h>

#include <string>

#include "core/model_registry.hpp"
#include "exp/hour_trace_experiment.hpp"
#include "exp/model_comparison.hpp"
#include "exp/path_profile.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/trace_summary.hpp"

namespace pftk::exp {
namespace {

class ProfileValidation : public ::testing::TestWithParam<const char*> {
 protected:
  static PathProfile find(const std::string& key) {
    const auto sep = key.find("->");
    return profile_by_label(key.substr(0, sep), key.substr(sep + 2));
  }
};

TEST_P(ProfileValidation, FullModelTracksSimulatedSendRate) {
  const PathProfile profile = find(GetParam());
  HourTraceOptions opt;
  opt.duration = 1200.0;  // 20 simulated minutes keeps the suite quick
  opt.seed = 2024;
  const HourTraceResult r = run_hour_trace(profile, opt);
  ASSERT_GT(r.summary.loss_indications, 10u) << "trace too quiet to validate";

  const double measured = r.measured_send_rate;
  const double full = model::evaluate_model(model::ModelKind::kFull, r.trace_params);
  // The paper's own fit is not tighter than a factor ~2 on the
  // timeout-dominated traces: evaluating eq (32) at Table II's
  // manic->alps row (p=.0133, RTT=.207, T0=2.5, Wm~16) gives ~27 pkts/s
  // against their measured 15.1 pkts/s. Require the same envelope: the
  // model within a factor of 3 of the measurement on every path.
  const double ratio = full / measured;
  EXPECT_GT(ratio, 1.0 / 3.0) << r.trace_params.describe();
  EXPECT_LT(ratio, 3.0) << r.trace_params.describe();
}

TEST_P(ProfileValidation, PerIntervalErrorsAreBounded) {
  const PathProfile profile = find(GetParam());
  HourTraceOptions opt;
  opt.duration = 1200.0;
  opt.seed = 31337;
  const HourTraceResult r = run_hour_trace(profile, opt);
  const ModelErrorRow row =
      score_hour_trace(profile.label(), r.trace_params, r.intervals, 100.0);
  ASSERT_GT(row.observations, 5u);
  // Fig. 9's proposed-model errors reach ~1.0 on the timeout-dominated
  // traces at the right end of the figure; bound ours by 1.5.
  EXPECT_LT(row.avg_error[0], 1.5) << "full-model error";
  EXPECT_LT(row.avg_error[1], 1.6) << "approx-model error";
}

INSTANTIATE_TEST_SUITE_P(
    TableTwoSample, ProfileValidation,
    ::testing::Values("manic->alps", "manic->sutton", "void->alps", "void->tove",
                      "babel->ganef", "babel->alps", "pif->manic"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '>') {
          c = '_';
        }
      }
      return name;
    });

TEST(ModelVsSimulation, FullModelBeatsTdOnlyOnMostProfiles) {
  // The paper's Fig. 9 claim, stated the way the paper states it: "in
  // most cases, our proposed model is a better estimator" — an aggregate
  // statement over traces, with individual exceptions at the low-error
  // end allowed.
  int full_wins = 0;
  int total = 0;
  double full_error_sum = 0.0;
  double td_error_sum = 0.0;
  for (const char* key :
       {"manic->alps", "manic->sutton", "manic->tove", "void->alps", "void->tove",
        "void->sutton", "babel->ganef", "babel->alps", "pif->manic", "pif->imagine"}) {
    const std::string label(key);
    const auto sep = label.find("->");
    const PathProfile profile =
        profile_by_label(label.substr(0, sep), label.substr(sep + 2));
    HourTraceOptions opt;
    opt.duration = 1200.0;
    opt.seed = 31337;
    const HourTraceResult r = run_hour_trace(profile, opt);
    const ModelErrorRow row = score_hour_trace(label, r.trace_params, r.intervals, 100.0);
    if (row.observations < 5) {
      continue;
    }
    ++total;
    full_error_sum += row.avg_error[0];
    td_error_sum += row.avg_error[2];
    if (row.avg_error[0] < row.avg_error[2]) {
      ++full_wins;
    }
  }
  ASSERT_GE(total, 8);
  EXPECT_GE(full_wins * 2, total) << "full model should win on most profiles";
  EXPECT_LT(full_error_sum, td_error_sum) << "and on aggregate error";
}

TEST(ModelVsSimulation, TimeoutsAreTheCommonIndication) {
  // Table II's headline: across the catalogue, timeout sequences are the
  // majority of loss indications on most paths.
  int timeout_dominated = 0;
  int total = 0;
  for (const PathProfile& profile : table2_profiles()) {
    if (profile.sender == "babel" && profile.receiver != "alps") {
      continue;  // sample a subset to keep runtime modest
    }
    HourTraceOptions opt;
    opt.duration = 600.0;
    opt.seed = 5150;
    const HourTraceResult r = run_hour_trace(profile, opt);
    if (r.summary.loss_indications < 5) {
      continue;
    }
    ++total;
    if (r.summary.timeout_fraction() > 0.5) {
      ++timeout_dominated;
    }
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(static_cast<double>(timeout_dominated) / static_cast<double>(total), 0.6);
}

TEST(ModelVsSimulation, ModemPathBreaksTheModel) {
  // Fig. 11 / Section IV: on the modem path the RTT is strongly window-
  // correlated and the models' per-interval predictions overestimate.
  const PathProfile profile = modem_profile();
  sim::Connection conn(make_modem_connection_config(profile, 42));
  trace::TraceRecorder rec;
  conn.set_observer(&rec);
  conn.run_for(1800.0);
  const trace::TraceSummary row = trace::summarize_trace(rec.events(), 3);
  EXPECT_GT(row.rtt_window_correlation, 0.8);  // paper: 0.97

  // Ordinary catalogue paths stay in the paper's [-0.1, 0.1] band
  // (allow measurement slack).
  HourTraceOptions opt;
  opt.duration = 600.0;
  const HourTraceResult normal = run_hour_trace(profile_by_label("manic", "ganef"), opt);
  EXPECT_LT(std::abs(normal.summary.rtt_window_correlation), 0.35);
}

}  // namespace
}  // namespace pftk::exp
