// The campaign runner's contract, straight from the issue:
//   * same spec + seeds => byte-identical journal and result ordering at
//     1, 4, and 8 worker threads;
//   * a kill-then-resume run (journal replay) equals an uninterrupted
//     run;
//   * watchdog trips are transient: retried with backoff and a perturbed
//     seed; invalid inputs are permanent: recorded once, never retried.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "exp/campaign/campaign_runner.hpp"
#include "sim/sim_watchdog.hpp"

namespace pftk::exp::campaign {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "pftk_campaign_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

PathProfile quick_profile(const std::string& sender, const std::string& receiver) {
  PathProfile profile;
  profile.sender = sender;
  profile.receiver = receiver;
  profile.one_way_delay = 0.05;
  profile.loss_p = 0.02;
  profile.advertised_window = 16.0;
  return profile;
}

/// 2 profiles x 3 seeds x {clean, long blackout}: the blackout outlives
/// the run, stalls the sender past the (tightened) stall horizon, and
/// trips the watchdog — real transient failures, real retries.
CampaignSpec mixed_spec() {
  CampaignSpec spec;
  spec.kind = CampaignKind::kShortTrace;
  spec.duration = 300.0;
  spec.profiles = {quick_profile("a", "b"), quick_profile("c", "d")};
  spec.seeds = {11, 22, 33};
  spec.scenarios = {{"clean", {}, {}},
                    {"dark", sim::FaultSchedule::parse("blackout@5+600"), {}}};
  spec.watchdog.stall_rtos = 1.0;
  spec.retry.max_attempts = 2;
  spec.retry.backoff_base = std::chrono::milliseconds{0};  // no real sleeping
  return spec;
}

/// Status/attempts/metrics fingerprint for cross-run comparison.
std::string fingerprint(const CampaignResult& result) {
  std::ostringstream os;
  for (const CampaignItemResult& item : result.items) {
    JournalEntry entry;
    entry.index = item.item.index;
    entry.key = item.item.key();
    entry.ok = item.ok();
    entry.attempts = item.attempts;
    if (item.ok()) {
      entry.metrics = item.metrics;
    } else {
      entry.failure_class = item.status == ItemStatus::kFailedTransient
                                ? FailureClass::kTransient
                                : FailureClass::kPermanent;
      entry.failure_kind = item.failure_kind;
      entry.error = item.error;
    }
    os << entry.to_json() << "\n";
  }
  return os.str();
}

TEST(CampaignRunner, JournalAndResultsAreIdenticalAtAnyThreadCount) {
  std::vector<std::string> journals;
  std::vector<std::string> fingerprints;
  for (const int threads : {1, 4, 8}) {
    const std::string path = temp_path("det_" + std::to_string(threads) + ".jsonl");
    std::remove(path.c_str());
    CampaignRunnerOptions options;
    options.threads = threads;
    options.journal_path = path;
    CampaignRunner runner(mixed_spec(), options);
    const CampaignResult result = runner.run();
    EXPECT_EQ(result.items.size(), 12u);
    EXPECT_FALSE(result.all_ok());  // the dark scenario loses its items
    journals.push_back(read_file(path));
    fingerprints.push_back(fingerprint(result));
  }
  EXPECT_FALSE(journals[0].empty());
  EXPECT_EQ(journals[0], journals[1]);
  EXPECT_EQ(journals[0], journals[2]);
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(CampaignRunner, KillThenResumeEqualsUninterrupted) {
  // Uninterrupted reference run.
  const std::string full_path = temp_path("full.jsonl");
  std::remove(full_path.c_str());
  CampaignRunnerOptions options;
  options.threads = 2;
  options.journal_path = full_path;
  const CampaignResult uninterrupted = CampaignRunner(mixed_spec(), options).run();
  const std::string full_journal = read_file(full_path);
  ASSERT_FALSE(full_journal.empty());

  // Simulate a kill after 5 settled items, mid-append of the 6th.
  std::istringstream lines(full_journal);
  std::string line;
  std::string prefix;
  for (int i = 0; i < 5 && std::getline(lines, line); ++i) {
    prefix += line + "\n";
  }
  const std::string resumed_path = temp_path("resumed.jsonl");
  write_file(resumed_path, prefix + "{\"item\":5,\"key\":\"c-");

  CampaignRunnerOptions resume_options;
  resume_options.threads = 8;  // different worker count on the resumed leg
  resume_options.journal_path = resumed_path;
  resume_options.resume = true;
  const CampaignResult resumed = CampaignRunner(mixed_spec(), resume_options).run();

  EXPECT_EQ(resumed.resumed, 5u);
  EXPECT_EQ(read_file(resumed_path), full_journal);
  EXPECT_EQ(fingerprint(resumed), fingerprint(uninterrupted));
  for (std::size_t i = 0; i < resumed.items.size(); ++i) {
    EXPECT_EQ(resumed.items[i].from_journal, i < 5u);
  }
  EXPECT_EQ(resumed.report.describe(), uninterrupted.report.describe());
}

TEST(CampaignRunner, ResumeRejectsAJournalFromADifferentSpec) {
  const std::string path = temp_path("mismatch.jsonl");
  std::remove(path.c_str());
  CampaignRunnerOptions options;
  options.journal_path = path;
  (void)CampaignRunner(mixed_spec(), options).run();

  CampaignSpec other = mixed_spec();
  other.seeds = {99, 98, 97};  // same shape, different items
  options.resume = true;
  CampaignRunner runner(other, options);
  EXPECT_THROW((void)runner.run(), std::invalid_argument);
}

TEST(CampaignRunner, WatchdogTripIsTransientAndRetriedWithBackoff) {
  CampaignSpec spec;
  spec.profiles = {quick_profile("a", "b")};
  spec.seeds = {5};
  spec.retry.max_attempts = 3;
  spec.retry.backoff_base = std::chrono::milliseconds{10};
  spec.retry.backoff_multiplier = 2.0;

  std::vector<std::uint64_t> seeds_seen;
  std::vector<std::chrono::milliseconds> delays;
  CampaignRunnerOptions options;
  options.executor = [&](const CampaignItem&, std::uint64_t seed) -> ItemOutcome {
    seeds_seen.push_back(seed);
    if (seeds_seen.size() < 3) {
      throw sim::WatchdogError(sim::WatchdogSnapshot{.reason = "stall"});
    }
    ItemOutcome outcome;
    outcome.metrics.packets_sent = 42;
    return outcome;
  };
  options.sleep = [&](std::chrono::milliseconds delay) { delays.push_back(delay); };

  const CampaignResult result = CampaignRunner(spec, options).run();
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].status, ItemStatus::kOk);
  EXPECT_EQ(result.items[0].attempts, 3);
  EXPECT_TRUE(result.all_ok());

  // Deterministic seed perturbation: attempt 0 keeps the base seed,
  // retries use distinct derived seeds.
  ASSERT_EQ(seeds_seen.size(), 3u);
  EXPECT_EQ(seeds_seen[0], 5u);
  EXPECT_NE(seeds_seen[1], seeds_seen[0]);
  EXPECT_NE(seeds_seen[2], seeds_seen[1]);
  EXPECT_EQ(seeds_seen[1], perturbed_seed(5, 1));
  EXPECT_EQ(seeds_seen[2], perturbed_seed(5, 2));

  // Capped exponential backoff before each retry.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_EQ(delays[0].count(), 10);
  EXPECT_EQ(delays[1].count(), 20);
}

TEST(CampaignRunner, TransientFailureExhaustsRetriesAndIsRecordedOnce) {
  CampaignSpec spec;
  spec.profiles = {quick_profile("a", "b")};
  spec.seeds = {5};
  spec.retry.max_attempts = 3;
  spec.retry.backoff_base = std::chrono::milliseconds{0};

  int calls = 0;
  CampaignRunnerOptions options;
  options.executor = [&](const CampaignItem&, std::uint64_t) -> ItemOutcome {
    ++calls;
    throw sim::WatchdogError(sim::WatchdogSnapshot{.reason = "stall"});
  };
  const CampaignResult result = CampaignRunner(spec, options).run();
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].status, ItemStatus::kFailedTransient);
  EXPECT_EQ(result.items[0].failure_kind, FailureKind::kWatchdogStall);
  EXPECT_EQ(result.items[0].attempts, 3);
  ASSERT_EQ(result.report.failures.size(), 1u);
  EXPECT_NE(result.taxonomy_summary().find("transient 1"), std::string::npos);
}

TEST(CampaignRunner, InvalidInputIsPermanentNeverRetried) {
  CampaignSpec spec;
  spec.profiles = {quick_profile("a", "b")};
  spec.seeds = {5};
  spec.retry.max_attempts = 5;

  int calls = 0;
  int sleeps = 0;
  CampaignRunnerOptions options;
  options.executor = [&](const CampaignItem&, std::uint64_t) -> ItemOutcome {
    ++calls;
    throw std::invalid_argument("ModelParams: p must be in [0, 1)");
  };
  options.sleep = [&](std::chrono::milliseconds) { ++sleeps; };
  const CampaignResult result = CampaignRunner(spec, options).run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sleeps, 0);
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].status, ItemStatus::kFailedPermanent);
  EXPECT_EQ(result.items[0].failure_kind, FailureKind::kInvalidInput);
  EXPECT_EQ(result.items[0].attempts, 1);
  ASSERT_EQ(result.report.failures.size(), 1u);
  EXPECT_NE(result.taxonomy_summary().find("permanent 1"), std::string::npos);
}

TEST(CampaignRunner, InvalidProfileIsPermanentEndToEnd) {
  // Through the real executor: a window of 0 is rejected by the sender
  // config (std::invalid_argument) => permanent, one attempt, one row.
  CampaignSpec spec;
  spec.duration = 30.0;
  PathProfile bad = quick_profile("bad", "host");
  bad.advertised_window = 0.0;
  spec.profiles = {quick_profile("a", "b"), bad};
  spec.seeds = {7};
  spec.retry.max_attempts = 4;
  const CampaignResult result = CampaignRunner(spec, {}).run();
  ASSERT_EQ(result.items.size(), 2u);
  EXPECT_TRUE(result.items[0].ok());
  EXPECT_EQ(result.items[1].status, ItemStatus::kFailedPermanent);
  EXPECT_EQ(result.items[1].attempts, 1);
  EXPECT_EQ(result.report.succeeded, 1u);
  ASSERT_EQ(result.report.failures.size(), 1u);
  EXPECT_EQ(result.report.failures[0].label, "bad->host/s7/clean/full");
}

TEST(CampaignRunner, ResultsKeepSpecOrderUnderConcurrency) {
  CampaignSpec spec = mixed_spec();
  CampaignRunnerOptions options;
  options.threads = 8;
  const CampaignResult result = CampaignRunner(spec, options).run();
  const auto items = spec.expand();
  ASSERT_EQ(result.items.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(result.items[i].item.key(), items[i].key());
    EXPECT_EQ(result.items[i].item.index, i);
  }
}

TEST(CampaignRunner, HourKindFillsPayloadAndMetrics) {
  CampaignSpec spec;
  spec.kind = CampaignKind::kHourTrace;
  spec.duration = 60.0;
  spec.interval_length = 20.0;
  spec.profiles = {quick_profile("a", "b")};
  spec.seeds = {3};
  const CampaignResult result = CampaignRunner(spec, {}).run();
  ASSERT_EQ(result.items.size(), 1u);
  ASSERT_TRUE(result.items[0].ok());
  ASSERT_TRUE(result.items[0].hour.has_value());
  EXPECT_EQ(result.items[0].metrics.packets_sent,
            result.items[0].hour->summary.packets_sent);
  EXPECT_GT(result.items[0].metrics.packets_sent, 0u);
  EXPECT_FALSE(result.items[0].hour->intervals.empty());
}

TEST(CampaignRunner, SpansCoverEveryItemInSpecOrder) {
  CampaignSpec spec = mixed_spec();
  const std::string path = temp_path("spans.jsonl");
  std::remove(path.c_str());
  CampaignRunnerOptions options;
  options.threads = 4;
  options.journal_path = path;
  const CampaignResult result = CampaignRunner(spec, options).run();

  const auto items = spec.expand();
  ASSERT_EQ(result.report.spans.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const obs::SpanRecord& span = result.report.spans[i];
    EXPECT_EQ(span.name, items[i].key());  // spec order, regardless of workers
    EXPECT_EQ(span.attempts, result.items[i].attempts);
    EXPECT_GE(span.total_seconds, 0.0);
    EXPECT_EQ(span.outcome, result.items[i].ok() ? "ok"
              : result.items[i].status == ItemStatus::kFailedTransient
                  ? "failed_transient"
                  : "failed_permanent");
    // Every attempt leaves a phase; retried items also have backoff phases.
    EXPECT_GE(span.phases.size(), static_cast<std::size_t>(span.attempts));
    // Each settled item is checkpointed exactly once.
    EXPECT_EQ(span.journal_writes, 1u);
    EXPECT_GT(span.journal_bytes, 0u);
  }
}

TEST(CampaignRunner, JournalIoTotalsMatchTheFileAndTheMetrics) {
  CampaignSpec spec = mixed_spec();
  const std::string path = temp_path("journal_io.jsonl");
  std::remove(path.c_str());
  CampaignRunnerOptions options;
  options.threads = 2;
  options.journal_path = path;
  const CampaignResult result = CampaignRunner(spec, options).run();

  EXPECT_EQ(result.journal_io.writes, result.items.size());
  EXPECT_EQ(result.journal_io.flushes, result.items.size());
  EXPECT_EQ(result.journal_io.replayed, 0u);
  EXPECT_EQ(result.journal_io.bytes, read_file(path).size());

  std::uint64_t span_bytes = 0;
  for (const obs::SpanRecord& span : result.report.spans) {
    span_bytes += span.journal_bytes;
  }
  EXPECT_EQ(span_bytes, result.journal_io.bytes);

  const obs::MetricValue* writes =
      result.report.metrics.find("pftk_journal_writes_total");
  const obs::MetricValue* bytes = result.report.metrics.find("pftk_journal_bytes_total");
  ASSERT_NE(writes, nullptr);
  ASSERT_NE(bytes, nullptr);
  EXPECT_DOUBLE_EQ(writes->value, static_cast<double>(result.journal_io.writes));
  EXPECT_DOUBLE_EQ(bytes->value, static_cast<double>(result.journal_io.bytes));
}

TEST(CampaignRunner, ReportMetricsCountItemsAndOutcomes) {
  const CampaignResult result = CampaignRunner(mixed_spec(), {}).run();
  const obs::MetricValue* total =
      result.report.metrics.find("pftk_campaign_items_total");
  const obs::MetricValue* ok = result.report.metrics.find("pftk_campaign_items_ok_total");
  ASSERT_NE(total, nullptr);
  ASSERT_NE(ok, nullptr);
  EXPECT_DOUBLE_EQ(total->value, static_cast<double>(result.items.size()));
  EXPECT_DOUBLE_EQ(ok->value, static_cast<double>(result.report.succeeded));
  EXPECT_LT(ok->value, total->value);  // the dark scenario fails items
  // Retries happened (transient watchdog trips), so attempt latencies and
  // retry counters are populated.
  const obs::MetricValue* attempts = result.report.metrics.find("pftk_attempt_seconds");
  ASSERT_NE(attempts, nullptr);
  EXPECT_GE(attempts->count, result.items.size());
  const obs::MetricValue* retries =
      result.report.metrics.find("pftk_campaign_retries_total");
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->value, 0.0);
}

TEST(CampaignRunner, ResumedItemsCarryReplayedSpans) {
  const std::string path = temp_path("span_resume.jsonl");
  std::remove(path.c_str());
  CampaignRunnerOptions options;
  options.journal_path = path;
  (void)CampaignRunner(mixed_spec(), options).run();

  options.resume = true;
  const CampaignResult resumed = CampaignRunner(mixed_spec(), options).run();
  EXPECT_EQ(resumed.resumed, resumed.items.size());
  ASSERT_EQ(resumed.report.spans.size(), resumed.items.size());
  for (const obs::SpanRecord& span : resumed.report.spans) {
    EXPECT_EQ(span.outcome, "replayed");
    EXPECT_EQ(span.journal_writes, 0u);  // nothing re-written on replay
  }
  const obs::MetricValue* replayed =
      resumed.report.metrics.find("pftk_journal_replayed_total");
  ASSERT_NE(replayed, nullptr);
  EXPECT_DOUBLE_EQ(replayed->value, static_cast<double>(resumed.items.size()));
}

TEST(CampaignRunner, RejectsBadOptions) {
  CampaignSpec spec = mixed_spec();
  CampaignRunnerOptions options;
  options.threads = 0;
  EXPECT_THROW(CampaignRunner(spec, options), std::invalid_argument);
  options.threads = 1;
  options.resume = true;  // without a journal path
  EXPECT_THROW(CampaignRunner(spec, options), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::exp::campaign
