// Flight recorder core: armed/disarmed gating, SPSC ring
// overwrite-oldest semantics, multi-thread drain merging, and the
// pftk-spans/1 export/load round trip.
//
// The recorder is a process singleton whose per-thread ring capacity is
// fixed by the first arm() in the process, so every test here arms with
// the same small capacity (kCap) and clears between tests.
#include "obs/flight/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/flight/span_export.hpp"

namespace flight = pftk::obs::flight;

namespace {

constexpr std::size_t kCap = 8;

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight::Recorder::instance().disarm();
    flight::Recorder::instance().clear();
  }
  void TearDown() override {
    flight::Recorder::instance().disarm();
    flight::Recorder::instance().clear();
  }
};

TEST_F(FlightRecorderTest, DisarmedSitesRecordNothing) {
  ASSERT_FALSE(flight::armed());
  {
    PFTK_SPAN("unit.noop");
    flight::Recorder::instance().record_marker("unit.marker");
  }
  const auto drained = flight::Recorder::instance().drain();
  EXPECT_TRUE(drained.spans.empty());
  EXPECT_EQ(drained.dropped, 0u);
  EXPECT_EQ(drained.threads, 0u);
}

TEST_F(FlightRecorderTest, ArmedScopeRecordsNamedNestedSpans) {
  flight::Recorder::instance().arm(kCap);
  {
    PFTK_SPAN("unit.outer");
    {
      PFTK_SPAN("unit.inner", 42);
    }
  }
  flight::Recorder::instance().disarm();
  const auto drained = flight::Recorder::instance().drain();
  ASSERT_EQ(drained.spans.size(), 2u);
  EXPECT_EQ(drained.threads, 1u);
  EXPECT_EQ(drained.dropped, 0u);
  // Sorted parent-first: outer begins no later and ends no earlier.
  EXPECT_EQ(drained.spans[0].name, "unit.outer");
  EXPECT_EQ(drained.spans[1].name, "unit.inner");
  EXPECT_EQ(drained.spans[1].arg, 42u);
  EXPECT_LE(drained.spans[0].begin_ns, drained.spans[1].begin_ns);
  EXPECT_GE(drained.spans[0].end_ns, drained.spans[1].end_ns);
  EXPECT_LE(drained.spans[0].begin_ns, drained.spans[0].end_ns);
}

TEST_F(FlightRecorderTest, SpanOpenedWhileArmedDropsIfDisarmedBeforeClose) {
  flight::Recorder::instance().arm(kCap);
  {
    PFTK_SPAN("unit.cut_short");
    flight::Recorder::instance().disarm();
  }
  EXPECT_TRUE(flight::Recorder::instance().drain().spans.empty());
}

TEST_F(FlightRecorderTest, RingOverwritesOldestAndCountsDrops) {
  auto& rec = flight::Recorder::instance();
  rec.arm(kCap);
  for (std::uint64_t i = 0; i < kCap + 3; ++i) {
    rec.record("unit.wrap", i, i + 1, i);
  }
  rec.disarm();
  const auto drained = rec.drain();
  ASSERT_EQ(drained.spans.size(), kCap);
  EXPECT_EQ(drained.dropped, 3u);
  // The survivors are the newest kCap records: args 3 .. kCap+2.
  for (std::size_t i = 0; i < drained.spans.size(); ++i) {
    EXPECT_EQ(drained.spans[i].arg, i + 3) << "slot " << i;
  }
}

TEST_F(FlightRecorderTest, ExactlyCapacityRecordsDropNothing) {
  auto& rec = flight::Recorder::instance();
  rec.arm(kCap);
  for (std::uint64_t i = 0; i < kCap; ++i) {
    rec.record("unit.exact", i, i + 1);
  }
  rec.disarm();
  const auto drained = rec.drain();
  EXPECT_EQ(drained.spans.size(), kCap);
  EXPECT_EQ(drained.dropped, 0u);
}

TEST_F(FlightRecorderTest, ThreadsGetPrivateRingsMergedByDrain) {
  auto& rec = flight::Recorder::instance();
  rec.arm(kCap);
  constexpr int kThreads = 3;
  constexpr std::uint64_t kPerThread = 5;  // below kCap: nothing drops
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        rec.record("unit.mt", i * 10, i * 10 + 1, i);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  rec.disarm();
  const auto drained = rec.drain();
  EXPECT_EQ(drained.spans.size(), kThreads * kPerThread);
  EXPECT_EQ(drained.dropped, 0u);
  EXPECT_EQ(drained.threads, static_cast<std::uint32_t>(kThreads));
  std::set<std::uint32_t> tids;
  for (const auto& span : drained.spans) {
    tids.insert(span.tid);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(FlightRecorderTest, ClearDropsSpansButKeepsRecorderUsable) {
  auto& rec = flight::Recorder::instance();
  rec.arm(kCap);
  rec.record("unit.before", 0, 1);
  rec.disarm();
  rec.clear();
  EXPECT_TRUE(rec.drain().spans.empty());
  rec.arm(kCap);
  rec.record("unit.after", 0, 1);
  rec.disarm();
  const auto drained = rec.drain();
  ASSERT_EQ(drained.spans.size(), 1u);
  EXPECT_EQ(drained.spans[0].name, "unit.after");
}

TEST_F(FlightRecorderTest, JsonlRoundTripPreservesEverySpanField) {
  auto& rec = flight::Recorder::instance();
  rec.arm(kCap);
  rec.record("unit.rt \"quoted\"", 100, 250, 7);
  rec.record("unit.rt2", 300, 300);  // zero-length marker survives too
  rec.disarm();
  const auto drained = rec.drain();

  const std::string path =
      (std::filesystem::temp_directory_path() / "pftk_flight_rt.jsonl").string();
  flight::save_spans_file(path, drained, "unit-test");
  const auto loaded = flight::load_spans_file(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.spans.size(), drained.spans.size());
  EXPECT_EQ(loaded.dropped, drained.dropped);
  EXPECT_EQ(loaded.threads, drained.threads);
  for (std::size_t i = 0; i < loaded.spans.size(); ++i) {
    EXPECT_EQ(loaded.spans[i].name, drained.spans[i].name);
    EXPECT_EQ(loaded.spans[i].tid, drained.spans[i].tid);
    EXPECT_EQ(loaded.spans[i].begin_ns, drained.spans[i].begin_ns);
    EXPECT_EQ(loaded.spans[i].end_ns, drained.spans[i].end_ns);
    EXPECT_EQ(loaded.spans[i].arg, drained.spans[i].arg);
  }
}

TEST_F(FlightRecorderTest, JsonExtensionSelectsChromeTraceEvents) {
  auto& rec = flight::Recorder::instance();
  rec.arm(kCap);
  rec.record("unit.chrome", 1000, 3500, 9);
  rec.disarm();
  const auto drained = rec.drain();

  const std::string body = flight::render_chrome_json(drained, "unit-test");
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"unit.chrome\""), std::string::npos);
  // 1000 ns begin -> ts 1.000 us; 2500 ns duration -> dur 2.500 us.
  EXPECT_NE(body.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(body.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(body.find("\"schema\":\"pftk-spans/1\""), std::string::npos);

  const std::string path =
      (std::filesystem::temp_directory_path() / "pftk_flight_rt.json").string();
  flight::save_spans_file(path, drained, "unit-test");
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), body);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, LoadRejectsMissingHeaderAndBadSpans) {
  namespace fs = std::filesystem;
  const std::string no_header = (fs::temp_directory_path() / "pftk_nohdr.jsonl").string();
  {
    std::ofstream out(no_header);
    out << "{\"kind\":\"span\",\"name\":\"x\",\"tid\":1,\"begin_ns\":0,"
           "\"end_ns\":1,\"arg\":0}\n";
  }
  EXPECT_THROW(flight::load_spans_file(no_header), std::invalid_argument);
  std::remove(no_header.c_str());

  const std::string backwards = (fs::temp_directory_path() / "pftk_back.jsonl").string();
  {
    std::ofstream out(backwards);
    out << "{\"schema\":\"pftk-spans/1\",\"kind\":\"header\",\"source\":\"t\","
           "\"spans\":1,\"dropped\":0,\"threads\":1}\n"
        << "{\"kind\":\"span\",\"name\":\"x\",\"tid\":1,\"begin_ns\":5,"
           "\"end_ns\":2,\"arg\":0}\n";
  }
  EXPECT_THROW(flight::load_spans_file(backwards), std::invalid_argument);
  std::remove(backwards.c_str());
}

}  // namespace
