#include <gtest/gtest.h>

#include "sim/connection.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/trace_summary.hpp"

namespace pftk::trace {
namespace {

TEST(TraceSummary, EmptyTraceIsAllZero) {
  const std::vector<TraceEvent> ev;
  const TraceSummary row = summarize_trace(ev);
  EXPECT_EQ(row.packets_sent, 0u);
  EXPECT_EQ(row.loss_indications, 0u);
  EXPECT_EQ(row.timeout_fraction(), 0.0);
}

TEST(TraceSummary, SimulatedHourStyleRowIsConsistent) {
  sim::ConnectionConfig cfg;
  cfg.sender.advertised_window = 16.0;
  cfg.forward_link.propagation_delay = 0.1;
  cfg.reverse_link.propagation_delay = 0.1;
  cfg.forward_loss = sim::BurstLossSpec{0.002, 0.3};
  cfg.sender.min_rto = 1.0;
  cfg.seed = 23;
  sim::Connection conn(cfg);
  TraceRecorder rec;
  conn.set_observer(&rec);
  conn.run_for(900.0);

  const TraceSummary row = summarize_trace(rec.events(), 3);
  EXPECT_GT(row.packets_sent, 1000u);
  EXPECT_GT(row.loss_indications, 0u);

  // Column identity: TD + all timeout depths == total indications.
  std::uint64_t sum = row.td_events;
  for (const std::uint64_t c : row.timeouts_by_depth) {
    sum += c;
  }
  EXPECT_EQ(sum, row.loss_indications);

  // p = indications / packets.
  EXPECT_NEAR(row.observed_p,
              static_cast<double>(row.loss_indications) /
                  static_cast<double>(row.packets_sent),
              1e-12);

  // RTT around the propagation floor; timeout near the RTO floor.
  EXPECT_GT(row.avg_rtt, 0.19);
  EXPECT_LT(row.avg_rtt, 0.40);
  EXPECT_GE(row.avg_timeout, 0.9);

  // Ordinary path: weak RTT/window correlation (Section IV).
  EXPECT_LT(std::abs(row.rtt_window_correlation), 0.35);

  // Timeout fraction within [0, 1] and consistent with the columns.
  const double frac = row.timeout_fraction();
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(TraceSummary, TimeoutFractionFormula) {
  TraceSummary row;
  row.loss_indications = 10;
  row.td_events = 4;
  EXPECT_DOUBLE_EQ(row.timeout_fraction(), 0.6);
}

TEST(TraceSummary, LabelsPassThrough) {
  const std::vector<TraceEvent> ev;
  TraceSummary row = summarize_trace(ev);
  row.sender = "manic";
  row.receiver = "alps";
  EXPECT_EQ(row.sender, "manic");
  EXPECT_EQ(row.receiver, "alps");
}

}  // namespace
}  // namespace pftk::trace
