// Wire-grammar robustness: every malformed request line must become a
// *typed* ProtocolError carrying the response code and the best-effort
// request id — never a silent drop or an untyped exception. Includes the
// satellite contract that non-finite deadlines and zero/negative b are
// rejected with the same typed path as the model inputs.
#include <gtest/gtest.h>

#include <string>

#include "core/model_registry.hpp"
#include "core/tcp_model_params.hpp"
#include "serve/protocol.hpp"

namespace pftk::serve {
namespace {

ProtocolError capture(const std::string& line) {
  try {
    (void)parse_request(line);
  } catch (const ProtocolError& e) {
    return e;
  }
  return ProtocolError(ErrCode::kInternal, "-", "parse unexpectedly succeeded");
}

TEST(ServeProtocol, ParsesModelRequestWithAllFields) {
  const Request req = parse_request(
      "MODEL req-1 p=0.02 rtt=0.1 t0=0.4 wm=16 b=2 model=approx "
      "deadline_ms=25");
  EXPECT_EQ(req.verb, Verb::kModel);
  EXPECT_EQ(req.id, "req-1");
  EXPECT_DOUBLE_EQ(req.params.p, 0.02);
  EXPECT_DOUBLE_EQ(req.params.rtt, 0.1);
  EXPECT_DOUBLE_EQ(req.params.t0, 0.4);
  EXPECT_DOUBLE_EQ(req.params.wm, 16.0);
  EXPECT_EQ(req.params.b, 2);
  EXPECT_EQ(req.kind, model::ModelKind::kApproximate);
  EXPECT_DOUBLE_EQ(req.deadline_ms, 25.0);
  EXPECT_TRUE(req.has_deadline());
}

TEST(ServeProtocol, FieldOrderIsFree) {
  const Request a = parse_request("MODEL x wm=8 t0=0.4 rtt=0.1 p=0.05");
  const Request b = parse_request("MODEL x p=0.05 rtt=0.1 t0=0.4 wm=8");
  EXPECT_DOUBLE_EQ(a.params.p, b.params.p);
  EXPECT_DOUBLE_EQ(a.params.wm, b.params.wm);
  EXPECT_EQ(a.kind, model::ModelKind::kFull);  // default
  EXPECT_FALSE(a.has_deadline());              // default: never expires
}

TEST(ServeProtocol, ParsesInverseCalibAndPing) {
  const Request inv = parse_request("INVERSE i1 rate=120 rtt=0.08 t0=0.3 wm=32");
  EXPECT_EQ(inv.verb, Verb::kInverse);
  EXPECT_DOUBLE_EQ(inv.target_rate, 120.0);

  const Request calib = parse_request("CALIB c1 trace=/tmp/t.tsv dupack=4");
  EXPECT_EQ(calib.verb, Verb::kCalib);
  EXPECT_EQ(calib.trace_path, "/tmp/t.tsv");
  EXPECT_EQ(calib.dupack_threshold, 4);

  const Request ping = parse_request("PING p1");
  EXPECT_EQ(ping.verb, Verb::kPing);
  EXPECT_EQ(ping.id, "p1");
}

TEST(ServeProtocol, TruncatedLinesAreBadRequestsWithRecoverableId) {
  // Missing required fields — id was fully received, so it is carried.
  const ProtocolError missing = capture("MODEL req-7 p=0.02 rtt=0.1");
  EXPECT_EQ(missing.code(), ErrCode::kBadRequest);
  EXPECT_EQ(missing.id(), "req-7");

  // A field cut mid-token.
  const ProtocolError cut = capture("MODEL req-8 p=0.02 rtt=");
  EXPECT_EQ(cut.code(), ErrCode::kBadRequest);
  EXPECT_EQ(cut.id(), "req-8");

  // Verb alone: no id to address.
  EXPECT_EQ(capture("MODEL").id(), "-");
  EXPECT_EQ(capture("").id(), "-");
  EXPECT_EQ(capture("NOSUCHVERB id p=1").code(), ErrCode::kBadRequest);
}

TEST(ServeProtocol, NonFiniteNumbersAreRejectedEverywhere) {
  for (const char* bad : {"nan", "inf", "-inf", "1e999"}) {
    SCOPED_TRACE(bad);
    const std::string p_line =
        std::string("MODEL m p=") + bad + " rtt=0.1 t0=0.4 wm=8";
    EXPECT_EQ(capture(p_line).code(), ErrCode::kBadRequest);
    const std::string dl_line =
        std::string("MODEL m p=0.02 rtt=0.1 t0=0.4 wm=8 deadline_ms=") + bad;
    EXPECT_EQ(capture(dl_line).code(), ErrCode::kBadRequest);
  }
  EXPECT_EQ(capture("MODEL m p=0.02 rtt=0.1 t0=0.4 wm=8 deadline_ms=-5").code(),
            ErrCode::kBadRequest);
}

TEST(ServeProtocol, ZeroOrNegativeBIsATypedRejection) {
  // The same ModelParams::validate() rule the CLI enforces (exit 2)
  // surfaces on the wire as BADREQ — one validation authority.
  EXPECT_EQ(capture("MODEL m p=0.02 rtt=0.1 t0=0.4 wm=8 b=0").code(),
            ErrCode::kBadRequest);
  EXPECT_EQ(capture("MODEL m p=0.02 rtt=0.1 t0=0.4 wm=8 b=-1").code(),
            ErrCode::kBadRequest);
  EXPECT_EQ(capture("MODEL m p=0.02 rtt=0.1 t0=0.4 wm=8 b=1.5").code(),
            ErrCode::kBadRequest);
  EXPECT_THROW((void)(model::ModelParams{0.02, 0.1, 0.4, 0, 8.0}.validate()),
               model::ParamError);
}

TEST(ServeProtocol, OutOfRangeModelInputsAreBadRequests) {
  // p=0 is *valid* (the window-limited regime); p >= 1 is not.
  EXPECT_NO_THROW((void)parse_request("MODEL m p=0 rtt=0.1 t0=0.4 wm=8"));
  EXPECT_EQ(capture("MODEL m p=1.5 rtt=0.1 t0=0.4 wm=8").code(),
            ErrCode::kBadRequest);
  EXPECT_EQ(capture("MODEL m p=0.02 rtt=-0.1 t0=0.4 wm=8").code(),
            ErrCode::kBadRequest);
  EXPECT_EQ(capture("INVERSE i rate=0 rtt=0.1 t0=0.4 wm=8").code(),
            ErrCode::kBadRequest);
  EXPECT_EQ(capture("INVERSE i rate=-3 rtt=0.1 t0=0.4 wm=8").code(),
            ErrCode::kBadRequest);
  EXPECT_EQ(capture("CALIB c dupack=3").code(), ErrCode::kBadRequest);
  EXPECT_EQ(capture("CALIB c trace=/tmp/t.tsv dupack=0").code(),
            ErrCode::kBadRequest);
  EXPECT_EQ(capture("MODEL m p=0.02 rtt=0.1 t0=0.4 wm=8 bogus=1").code(),
            ErrCode::kBadRequest);
}

TEST(ServeProtocol, RecoverRequestIdNeedsProofOfCompleteness) {
  // A third token (or more) proves the id token ended; a bare two-token
  // prefix may hold a half-transmitted id and must not be trusted.
  EXPECT_EQ(recover_request_id("MODEL req-42 p=0.1"), "req-42");
  EXPECT_EQ(recover_request_id("MODEL req-4"), "-");
  EXPECT_EQ(recover_request_id("MODEL"), "-");
  EXPECT_EQ(recover_request_id(""), "-");
}

TEST(ServeProtocol, ResponseRoundTrip) {
  const std::string ok = format_ok("r1", {{"rate", "123.5"}, {"model", "full"}});
  EXPECT_EQ(ok, "OK r1 rate=123.5 model=full");
  const Response parsed = parse_response(ok);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.id, "r1");
  ASSERT_NE(parsed.find("rate"), nullptr);
  EXPECT_EQ(*parsed.find("rate"), "123.5");
  EXPECT_EQ(parsed.find("absent"), nullptr);

  const std::string err = format_err("r2", ErrCode::kBusy, {{"retry_ms", "40"}});
  EXPECT_EQ(err, "ERR r2 BUSY retry_ms=40");
  const Response perr = parse_response(err);
  EXPECT_FALSE(perr.ok);
  EXPECT_EQ(perr.code, ErrCode::kBusy);
  ASSERT_NE(perr.find("retry_ms"), nullptr);
  EXPECT_EQ(*perr.find("retry_ms"), "40");
}

TEST(ServeProtocol, MalformedResponsesThrowOnTheClientSide) {
  EXPECT_THROW((void)parse_response(""), ProtocolError);
  EXPECT_THROW((void)parse_response("OK"), ProtocolError);
  EXPECT_THROW((void)parse_response("ERR r1"), ProtocolError);
  EXPECT_THROW((void)parse_response("ERR r1 NOSUCHCODE"), ProtocolError);
  EXPECT_THROW((void)parse_response("WHAT r1 rate=1"), ProtocolError);
  EXPECT_THROW((void)parse_response("OK r1 =nokey"), ProtocolError);
}

TEST(ServeProtocol, NumbersRoundTripAtFullPrecision) {
  for (const double v : {123.456789012345678, 1e-9, 0.3, 7.0 / 3.0}) {
    const std::string text = format_number(v);
    EXPECT_DOUBLE_EQ(std::stod(text), v) << text;
  }
}

TEST(ServeProtocol, ErrCodeNamesRoundTrip) {
  for (const ErrCode code :
       {ErrCode::kBadRequest, ErrCode::kTooBig, ErrCode::kBusy,
        ErrCode::kDeadlineExceeded, ErrCode::kShutdown, ErrCode::kInternal}) {
    EXPECT_EQ(err_code_from_name(err_code_name(code)), code);
  }
  EXPECT_THROW((void)err_code_from_name("NOPE"), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::serve
