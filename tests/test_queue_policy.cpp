#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/queue_policy.hpp"

namespace pftk::sim {
namespace {

TEST(DropTailPolicy, AdmitsBelowCapacity) {
  DropTailPolicy policy(3);
  Rng rng(1);
  EXPECT_TRUE(policy.admit(0, rng));
  EXPECT_TRUE(policy.admit(2, rng));
  EXPECT_FALSE(policy.admit(3, rng));
  EXPECT_FALSE(policy.admit(10, rng));
  EXPECT_EQ(policy.capacity(), 3u);
}

TEST(DropTailPolicy, RejectsZeroCapacity) {
  EXPECT_THROW(DropTailPolicy(0), std::invalid_argument);
}

RedPolicy::Config red_config() {
  RedPolicy::Config cfg;
  cfg.min_threshold = 2.0;
  cfg.max_threshold = 8.0;
  cfg.max_drop_prob = 0.5;
  cfg.ewma_weight = 1.0;  // track instantaneous queue for testability
  cfg.hard_capacity = 20;
  return cfg;
}

TEST(RedPolicy, AlwaysAdmitsBelowMinThreshold) {
  RedPolicy policy(red_config());
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(policy.admit(1, rng));
  }
}

TEST(RedPolicy, AlwaysDropsAboveMaxThreshold) {
  RedPolicy policy(red_config());
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(policy.admit(9, rng));
  }
}

TEST(RedPolicy, DropsProbabilisticallyBetweenThresholds) {
  RedPolicy policy(red_config());
  Rng rng(4);
  int admitted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    admitted += policy.admit(5, rng) ? 1 : 0;
  }
  const double admit_rate = static_cast<double>(admitted) / n;
  EXPECT_GT(admit_rate, 0.4);
  EXPECT_LT(admit_rate, 0.95);
}

TEST(RedPolicy, HardCapacityAlwaysEnforced) {
  RedPolicy policy(red_config());
  Rng rng(5);
  EXPECT_FALSE(policy.admit(20, rng));
  EXPECT_FALSE(policy.admit(25, rng));
}

TEST(RedPolicy, EwmaSmoothsTheAverage) {
  RedPolicy::Config cfg = red_config();
  cfg.ewma_weight = 0.1;
  RedPolicy policy(cfg);
  Rng rng(6);
  (void)policy.admit(10, rng);
  // One sample of 10 with weight 0.1 -> average 1.0, far below min_th.
  EXPECT_NEAR(policy.average_queue(), 1.0, 1e-12);
}

TEST(RedPolicy, ResetClearsAverage) {
  RedPolicy policy(red_config());
  Rng rng(7);
  (void)policy.admit(6, rng);
  EXPECT_GT(policy.average_queue(), 0.0);
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.average_queue(), 0.0);
}

TEST(RedPolicy, RejectsBadConfigs) {
  RedPolicy::Config cfg = red_config();
  cfg.max_threshold = cfg.min_threshold;
  EXPECT_THROW(RedPolicy{cfg}, std::invalid_argument);
  cfg = red_config();
  cfg.max_drop_prob = 0.0;
  EXPECT_THROW(RedPolicy{cfg}, std::invalid_argument);
  cfg = red_config();
  cfg.ewma_weight = 1.5;
  EXPECT_THROW(RedPolicy{cfg}, std::invalid_argument);
  cfg = red_config();
  cfg.hard_capacity = 0;
  EXPECT_THROW(RedPolicy{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace pftk::sim
