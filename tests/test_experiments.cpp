// Integration tests of the hour-trace and short-trace experiment drivers
// (shortened durations keep the suite fast; the benches run full length).
#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/hour_trace_experiment.hpp"
#include "exp/short_trace_experiment.hpp"

namespace pftk::exp {
namespace {

TEST(HourTraceExperiment, ProducesConsistentResult) {
  const PathProfile profile = profile_by_label("babel", "tove");
  HourTraceOptions opt;
  opt.duration = 600.0;
  opt.seed = 7;
  const HourTraceResult r = run_hour_trace(profile, opt);

  EXPECT_EQ(r.profile.label(), "babel -> tove");
  EXPECT_NEAR(r.duration, 600.0, 1e-9);
  EXPECT_GT(r.summary.packets_sent, 1000u);
  EXPECT_GT(r.summary.loss_indications, 0u);
  EXPECT_EQ(r.intervals.size(), 6u);

  // Interval packet counts must sum to the trace total.
  std::uint64_t interval_sum = 0;
  for (const auto& obs : r.intervals) {
    interval_sum += obs.packets_sent;
  }
  EXPECT_EQ(interval_sum, r.summary.packets_sent);

  // Trace params carry the measured values.
  EXPECT_NEAR(r.trace_params.p, r.summary.observed_p, 1e-12);
  EXPECT_GT(r.trace_params.rtt, 0.15);
  EXPECT_EQ(r.trace_params.b, 2);
  EXPECT_DOUBLE_EQ(r.trace_params.wm, profile.advertised_window);
  EXPECT_TRUE(r.trace_params.valid());

  // Measured send rate ties out with packet count.
  EXPECT_NEAR(r.measured_send_rate,
              static_cast<double>(r.summary.packets_sent) / 600.0, 1e-6);
}

TEST(HourTraceExperiment, DeterministicPerSeed) {
  const PathProfile profile = profile_by_label("manic", "spiff");
  HourTraceOptions opt;
  opt.duration = 300.0;
  const HourTraceResult a = run_hour_trace(profile, opt);
  const HourTraceResult b = run_hour_trace(profile, opt);
  EXPECT_EQ(a.summary.packets_sent, b.summary.packets_sent);
  EXPECT_EQ(a.summary.loss_indications, b.summary.loss_indications);
}

TEST(HourTraceExperiment, TimeoutsDominateOnTimeoutProfiles) {
  // The paper's central observation: TOs are the majority of indications
  // on most paths. Check a profile calibrated for whole-flight losses.
  const PathProfile profile = profile_by_label("babel", "alps");
  HourTraceOptions opt;
  opt.duration = 900.0;
  const HourTraceResult r = run_hour_trace(profile, opt);
  EXPECT_GT(r.summary.timeout_fraction(), 0.5);
}

TEST(HourTraceExperiment, RejectsBadOptions) {
  const PathProfile profile = table2_profiles().front();
  HourTraceOptions opt;
  opt.duration = 0.0;
  EXPECT_THROW(run_hour_trace(profile, opt), std::invalid_argument);
  opt.duration = 100.0;
  opt.interval_length = -1.0;
  EXPECT_THROW(run_hour_trace(profile, opt), std::invalid_argument);
}

TEST(ShortTraceExperiment, ProducesOneRecordPerConnection) {
  const PathProfile profile = profile_by_label("manic", "ganef");
  ShortTraceOptions opt;
  opt.connections = 10;
  opt.duration = 100.0;
  const auto records = run_short_traces(profile, opt);
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].index, i);
    EXPECT_GT(records[static_cast<std::size_t>(i)].packets_sent, 0u);
  }
}

TEST(ShortTraceExperiment, PerTraceParametersVary) {
  const PathProfile profile = profile_by_label("void", "ganef");
  ShortTraceOptions opt;
  opt.connections = 12;
  const auto records = run_short_traces(profile, opt);
  // Different seeds -> different measured loss rates on at least two.
  bool vary = false;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].params.p != records[0].params.p) {
      vary = true;
    }
  }
  EXPECT_TRUE(vary);
}

TEST(ShortTraceExperiment, PredictionsFilledForAllModels) {
  const PathProfile profile = profile_by_label("pif", "imagine");
  ShortTraceOptions opt;
  opt.connections = 5;
  const auto records = run_short_traces(profile, opt);
  for (const ShortTraceRecord& rec : records) {
    if (!rec.had_loss) {
      continue;
    }
    for (const double pred : rec.predicted) {
      EXPECT_GT(pred, 0.0);
      EXPECT_TRUE(std::isfinite(pred));
    }
    // Full model prediction below TD-only (timeouts slow TCP down).
    EXPECT_LT(rec.predicted[0], rec.predicted[2] * 1.5);
  }
}

TEST(ShortTraceExperiment, RejectsBadOptions) {
  const PathProfile profile = table2_profiles().front();
  ShortTraceOptions opt;
  opt.connections = 0;
  EXPECT_THROW(run_short_traces(profile, opt), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::exp
