#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/error_metrics.hpp"

namespace pftk::stats {
namespace {

TEST(AverageErrorMetric, PerfectPredictionIsZero) {
  AverageErrorMetric m;
  m.add(10.0, 10.0);
  m.add(5.0, 5.0);
  EXPECT_DOUBLE_EQ(m.value(), 0.0);
  EXPECT_EQ(m.count(), 2u);
}

TEST(AverageErrorMetric, KnownRelativeErrors) {
  AverageErrorMetric m;
  m.add(12.0, 10.0);  // 0.2
  m.add(5.0, 10.0);   // 0.5
  EXPECT_NEAR(m.value(), 0.35, 1e-12);
}

TEST(AverageErrorMetric, OverAndUnderPredictionsBothCountPositive) {
  AverageErrorMetric m;
  m.add(15.0, 10.0);
  EXPECT_NEAR(m.value(), 0.5, 1e-12);
  m.add(5.0, 10.0);
  EXPECT_NEAR(m.value(), 0.5, 1e-12);
}

TEST(AverageErrorMetric, ZeroObservedIsSkipped) {
  AverageErrorMetric m;
  m.add(10.0, 0.0);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.skipped(), 1u);
  EXPECT_DOUBLE_EQ(m.value(), 0.0);
}

TEST(AverageErrorMetric, EmptyIsZero) {
  AverageErrorMetric m;
  EXPECT_DOUBLE_EQ(m.value(), 0.0);
}

TEST(AverageRelativeError, SpanOverloadMatches) {
  const std::vector<double> pred{12.0, 5.0};
  const std::vector<double> obs{10.0, 10.0};
  EXPECT_NEAR(average_relative_error(pred, obs), 0.35, 1e-12);
}

TEST(AverageRelativeError, MismatchedSpansThrow) {
  const std::vector<double> pred{1.0};
  const std::vector<double> obs{1.0, 2.0};
  EXPECT_THROW((void)average_relative_error(pred, obs), std::invalid_argument);
}

}  // namespace
}  // namespace pftk::stats
